#include "core/faults.h"

#include <algorithm>
#include <deque>

namespace hpl {

Event CrashEvent(ProcessId p) { return Internal(p, kCrashLabel); }

bool IsCrashEvent(const Event& e) {
  return e.IsInternal() && e.label == kCrashLabel;
}

bool IsRecoverEvent(const Event& e) {
  return e.IsInternal() && e.label == kRecoverLabel;
}

bool IsFaultMarker(const Event& e) {
  return IsCrashEvent(e) || IsRecoverEvent(e);
}

ProcessSet CrashedIn(const Computation& x) {
  ProcessSet crashed;
  for (const Event& e : x.events()) {
    if (IsCrashEvent(e))
      crashed.Insert(e.process);
    else if (IsRecoverEvent(e))
      crashed.Erase(e.process);
  }
  return crashed;
}

ProcessSet CorrectIn(const Computation& x, int num_processes) {
  return CrashedIn(x).ComplementIn(ProcessSet::All(num_processes));
}

CrashFaultSystem::CrashFaultSystem(const System& base,
                                   CrashFaultOptions options)
    : base_(&base), options_(options) {
  if (options_.max_crashes < 0)
    throw ModelError("CrashFaultSystem: max_crashes < 0");
  if (options_.may_crash.IsEmpty())
    options_.may_crash = base_->AllProcesses();
}

CrashFaultSystem::CrashFaultSystem(std::unique_ptr<const System> base,
                                   CrashFaultOptions options)
    : owned_(std::move(base)), base_(owned_.get()), options_(options) {
  if (!base_) throw ModelError("CrashFaultSystem: null base system");
  if (options_.max_crashes < 0)
    throw ModelError("CrashFaultSystem: max_crashes < 0");
  if (options_.may_crash.IsEmpty())
    options_.may_crash = base_->AllProcesses();
}

std::vector<Event> CrashFaultSystem::EnabledEvents(const Computation& x) const {
  const ProcessSet crashed = CrashedIn(x);

  // The base system never sees fault markers: it is asked about the run
  // with them stripped, which by induction is a run it generated itself.
  std::vector<Event> stripped;
  stripped.reserve(x.size());
  for (const Event& e : x.events())
    if (!IsFaultMarker(e)) stripped.push_back(e);

  std::vector<Event> enabled;
  for (Event& e : base_->EnabledEvents(
           Computation::TrustedFromEvents(std::move(stripped)))) {
    // Crash-silence: a crashed process performs nothing, and nobody can
    // receive what a crashed process would have sent — but messages sent
    // *before* the crash stay deliverable (receives are events of the
    // receiver, which CanExtend already guarantees have a matching send).
    if (!crashed.Contains(e.process)) enabled.push_back(std::move(e));
  }
  // The adversary may crash any still-correct candidate while the failure
  // budget lasts.  Ascending process order keeps EnabledEvents
  // deterministic, which enumeration requires.
  if (crashed.Size() < options_.max_crashes) {
    options_.may_crash.Minus(crashed).ForEach(
        [&](ProcessId p) { enabled.push_back(CrashEvent(p)); });
  }
  return enabled;
}

std::string CrashFaultSystem::Name() const {
  return base_->Name() + "+crash(f=" + std::to_string(options_.max_crashes) +
         ")";
}

FailurePatternIndex::FailurePatternIndex(const ComputationSpace& space)
    : all_(space.AllProcesses()) {
  crashed_.assign(space.size(), 0);
  if (space.size() == 0) return;
  // The class store is a tree rooted at the empty computation (every class
  // has one parent link), so one walk over the successor CSR labels every
  // class with its crash mask.
  std::vector<std::uint8_t> visited(space.size(), 0);
  std::deque<std::size_t> frontier;
  frontier.push_back(0);
  visited[0] = 1;
  while (!frontier.empty()) {
    const std::size_t id = frontier.front();
    frontier.pop_front();
    for (const auto& succ : space.SuccessorsOf(id)) {
      if (visited[succ.class_id]) continue;
      visited[succ.class_id] = 1;
      std::uint64_t mask = crashed_[id];
      if (IsCrashEvent(succ.event))
        mask |= std::uint64_t{1} << succ.event.process;
      else if (IsRecoverEvent(succ.event))
        mask &= ~(std::uint64_t{1} << succ.event.process);
      crashed_[succ.class_id] = mask;
      frontier.push_back(succ.class_id);
    }
  }
  // Safety net for classes not hanging off the root's successor tree (a
  // future store could admit them): derive the mask from the events.
  for (std::size_t id = 0; id < space.size(); ++id)
    if (!visited[id]) crashed_[id] = CrashedIn(space.At(id)).bits();

  patterns_ = crashed_;
  std::sort(patterns_.begin(), patterns_.end());
  patterns_.erase(std::unique(patterns_.begin(), patterns_.end()),
                  patterns_.end());
}

namespace {

std::vector<std::uint8_t> ResolvePerPattern(KnowledgeEvaluator& eval,
                                            const FailurePatternIndex& index,
                                            const FormulaPtr& f, bool common) {
  std::vector<std::uint8_t> out(index.size(), 0);
  for (const std::uint64_t mask : index.patterns()) {
    const ProcessSet correct =
        ProcessSet::FromBits(mask).ComplementIn(index.AllProcesses());
    if (correct.IsEmpty()) continue;  // all crashed: verdict stays false
    const FormulaPtr query =
        common ? Formula::Common(correct, f) : Formula::Everyone(correct, f);
    const std::vector<std::uint8_t> verdicts = eval.HoldsAll(query);
    for (std::size_t id = 0; id < out.size(); ++id)
      if (index.CrashedAt(id).bits() == mask) out[id] = verdicts[id];
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> CommonAmongCorrect(KnowledgeEvaluator& eval,
                                             const FailurePatternIndex& index,
                                             const FormulaPtr& f) {
  return ResolvePerPattern(eval, index, f, /*common=*/true);
}

std::vector<std::uint8_t> EveryoneCorrectKnows(KnowledgeEvaluator& eval,
                                               const FailurePatternIndex& index,
                                               const FormulaPtr& f) {
  return ResolvePerPattern(eval, index, f, /*common=*/false);
}

}  // namespace hpl
