// Vector clocks — the substrate for deciding Lamport's happened-before
// relation (reference [5] of the paper) over a fixed computation.
//
// A VectorClock maps each process p to the number of events on p that are
// causally at-or-before the clock's owner event.  For events e, e' of a
// computation, e -> e' (the paper's process-chain arrow) iff
//   clock(e)[process(e)] <= clock(e')[process(e)].
#ifndef HPL_CORE_VECTOR_CLOCK_H_
#define HPL_CORE_VECTOR_CLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace hpl {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int num_processes) : counts_(num_processes, 0) {}

  int num_processes() const noexcept { return static_cast<int>(counts_.size()); }

  std::uint32_t Get(ProcessId p) const {
    CheckIndex(p);
    return counts_[p];
  }

  void Set(ProcessId p, std::uint32_t v) {
    CheckIndex(p);
    counts_[p] = v;
  }

  void Increment(ProcessId p) {
    CheckIndex(p);
    ++counts_[p];
  }

  // Component-wise maximum (the merge performed at a receive).
  void MergeFrom(const VectorClock& other);

  // True iff every component of *this is <= the corresponding component of
  // other ("clock dominance").
  bool LessEq(const VectorClock& other) const;

  // Strictly less: LessEq and differs in some component.
  bool Less(const VectorClock& other) const;

  // Neither LessEq direction holds: the owning events are concurrent.
  bool ConcurrentWith(const VectorClock& other) const;

  bool operator==(const VectorClock&) const = default;

  std::string ToString() const;

 private:
  void CheckIndex(ProcessId p) const {
    if (p < 0 || p >= num_processes())
      throw ModelError("VectorClock index out of range");
  }
  std::vector<std::uint32_t> counts_;
};

}  // namespace hpl

#endif  // HPL_CORE_VECTOR_CLOCK_H_
