#include "core/random_system.h"

#include <algorithm>

namespace hpl {
namespace {

// splitmix64: tiny, deterministic, good-enough generator for scripts.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t Next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t Below(std::uint64_t n) { return n == 0 ? 0 : Next() % n; }
};

}  // namespace

RandomSystem::RandomSystem(const RandomSystemOptions& options)
    : options_(options) {
  if (options.num_processes < 2)
    throw ModelError("RandomSystem: need at least 2 processes");
  SplitMix64 rng{options.seed * 0x9e3779b97f4a7c15ull + 0x853c49e6748fea9bull};
  scripts_.resize(options.num_processes);

  for (MessageId m = 0; m < options.num_messages; ++m) {
    const auto from =
        static_cast<ProcessId>(rng.Below(options.num_processes));
    auto to = static_cast<ProcessId>(rng.Below(options.num_processes - 1));
    if (to >= from) ++to;
    scripts_[from].push_back(Send(from, to, m, "m" + std::to_string(m)));
  }
  for (ProcessId p = 0; p < options.num_processes; ++p) {
    for (int i = 0; i < options.internal_events; ++i) {
      // Insert internal events at random script positions.
      const auto pos = rng.Below(scripts_[p].size() + 1);
      scripts_[p].insert(
          scripts_[p].begin() + static_cast<std::ptrdiff_t>(pos),
          Internal(p, "i" + std::to_string(p) + "_" + std::to_string(i)));
    }
  }
}

std::vector<Event> RandomSystem::EnabledEvents(const Computation& x) const {
  std::vector<Event> out;
  for (ProcessId p = 0; p < options_.num_processes; ++p) {
    // Next scripted local event: the process has performed some prefix of
    // its script interleaved with receives; count non-receive events on p.
    int done = 0;
    for (const Event& e : x.events())
      if (e.process == p && !e.IsReceive()) ++done;
    if (done < static_cast<int>(scripts_[p].size())) {
      const Event& next = scripts_[p][done];
      if (CanExtend(x, next)) out.push_back(next);
    }
  }
  // Receives: any sent-but-undelivered message may be received now.
  for (const Event& e : x.events()) {
    if (!e.IsSend()) continue;
    Event recv = Receive(e.peer, e.process, e.message, e.label);
    if (CanExtend(x, recv)) out.push_back(recv);
  }
  return out;
}

std::string RandomSystem::Name() const {
  return "random(n=" + std::to_string(options_.num_processes) +
         ",m=" + std::to_string(options_.num_messages) +
         ",seed=" + std::to_string(options_.seed) + ")";
}

}  // namespace hpl
