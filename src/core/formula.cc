#include "core/formula.h"

#include <algorithm>
#include <cctype>

namespace hpl {

// Formula's fields are private with only static factories as writers; the
// factories funnel through this builder (a friend of Formula).
struct FormulaBuilder {
  static FormulaPtr Build(FormulaKind kind, Predicate atom, FormulaPtr left,
                          FormulaPtr right, ProcessSet group) {
    auto node = std::shared_ptr<Formula>(new Formula());
    node->kind_ = kind;
    node->atom_ = std::move(atom);
    node->left_ = std::move(left);
    node->right_ = std::move(right);
    node->group_ = group;
    return node;
  }
};

FormulaPtr Formula::Atom(Predicate b) {
  if (!b.valid()) throw ModelError("Formula::Atom: empty predicate");
  return FormulaBuilder::Build(FormulaKind::kAtom, std::move(b), nullptr,
                               nullptr, ProcessSet{});
}

FormulaPtr Formula::Not(FormulaPtr f) {
  if (!f) throw ModelError("Formula::Not: null operand");
  return FormulaBuilder::Build(FormulaKind::kNot, Predicate{}, std::move(f),
                               nullptr, ProcessSet{});
}

FormulaPtr Formula::And(FormulaPtr a, FormulaPtr b) {
  if (!a || !b) throw ModelError("Formula::And: null operand");
  return FormulaBuilder::Build(FormulaKind::kAnd, Predicate{}, std::move(a),
                               std::move(b), ProcessSet{});
}

FormulaPtr Formula::Or(FormulaPtr a, FormulaPtr b) {
  if (!a || !b) throw ModelError("Formula::Or: null operand");
  return FormulaBuilder::Build(FormulaKind::kOr, Predicate{}, std::move(a),
                               std::move(b), ProcessSet{});
}

FormulaPtr Formula::Implies(FormulaPtr a, FormulaPtr b) {
  if (!a || !b) throw ModelError("Formula::Implies: null operand");
  return FormulaBuilder::Build(FormulaKind::kImplies, Predicate{},
                               std::move(a), std::move(b), ProcessSet{});
}

FormulaPtr Formula::Knows(ProcessSet p, FormulaPtr f) {
  if (!f) throw ModelError("Formula::Knows: null operand");
  return FormulaBuilder::Build(FormulaKind::kKnows, Predicate{}, std::move(f),
                               nullptr, p);
}

FormulaPtr Formula::Knows(ProcessId p, FormulaPtr f) {
  return Knows(ProcessSet::Of(p), std::move(f));
}

FormulaPtr Formula::Sure(ProcessSet p, FormulaPtr f) {
  if (!f) throw ModelError("Formula::Sure: null operand");
  return FormulaBuilder::Build(FormulaKind::kSure, Predicate{}, std::move(f),
                               nullptr, p);
}

FormulaPtr Formula::Common(ProcessSet g, FormulaPtr f) {
  if (!f) throw ModelError("Formula::Common: null operand");
  if (g.IsEmpty()) throw ModelError("Formula::Common: empty group");
  return FormulaBuilder::Build(FormulaKind::kCommon, Predicate{},
                               std::move(f), nullptr, g);
}

FormulaPtr Formula::Everyone(ProcessSet g, FormulaPtr f) {
  if (!f) throw ModelError("Formula::Everyone: null operand");
  if (g.IsEmpty()) throw ModelError("Formula::Everyone: empty group");
  return FormulaBuilder::Build(FormulaKind::kEveryone, Predicate{},
                               std::move(f), nullptr, g);
}

FormulaPtr Formula::EveryoneIterated(ProcessSet g, int k, FormulaPtr f) {
  if (k < 0) throw ModelError("Formula::EveryoneIterated: negative depth");
  FormulaPtr out = std::move(f);
  for (int i = 0; i < k; ++i) out = Everyone(g, std::move(out));
  return out;
}

FormulaPtr Formula::Possible(ProcessSet p, FormulaPtr f) {
  if (!f) throw ModelError("Formula::Possible: null operand");
  return FormulaBuilder::Build(FormulaKind::kPossible, Predicate{},
                               std::move(f), nullptr, p);
}

FormulaPtr Formula::KnowsChain(const std::vector<ProcessSet>& chain,
                               FormulaPtr f) {
  FormulaPtr out = std::move(f);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it)
    out = Knows(*it, std::move(out));
  return out;
}

std::string Formula::ToString() const {
  switch (kind_) {
    case FormulaKind::kAtom:
      return atom_.name();
    case FormulaKind::kNot:
      return "!" + left_->ToString();
    case FormulaKind::kAnd:
      return "(" + left_->ToString() + " && " + right_->ToString() + ")";
    case FormulaKind::kOr:
      return "(" + left_->ToString() + " || " + right_->ToString() + ")";
    case FormulaKind::kImplies:
      return "(" + left_->ToString() + " => " + right_->ToString() + ")";
    case FormulaKind::kKnows:
      return "K" + group_.ToString() + " " + left_->ToString();
    case FormulaKind::kSure:
      return "Sure" + group_.ToString() + " " + left_->ToString();
    case FormulaKind::kCommon:
      return "CK" + group_.ToString() + " " + left_->ToString();
    case FormulaKind::kEveryone:
      return "E" + group_.ToString() + " " + left_->ToString();
    case FormulaKind::kPossible:
      return "M" + group_.ToString() + " " + left_->ToString();
  }
  return "?";
}

int Formula::ModalDepth() const {
  const int l = left_ ? left_->ModalDepth() : 0;
  const int r = right_ ? right_->ModalDepth() : 0;
  const int sub = std::max(l, r);
  switch (kind_) {
    case FormulaKind::kKnows:
    case FormulaKind::kSure:
    case FormulaKind::kCommon:
    case FormulaKind::kEveryone:
    case FormulaKind::kPossible:
      return sub + 1;
    default:
      return sub;
  }
}

// ---------------------------------------------------------------------------
// Parser for the text syntax.
// ---------------------------------------------------------------------------
namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::vector<Predicate>& atoms)
      : text_(text), atoms_(atoms) {}

  FormulaPtr Parse() {
    FormulaPtr f = ParseImplies();
    SkipSpace();
    if (pos_ != text_.size())
      throw ModelError("Formula parse: trailing input at " +
                       std::to_string(pos_));
    return f;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_])))
      ++pos_;
  }

  bool Eat(const std::string& token) {
    SkipSpace();
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  // implies is right-associative and lowest precedence.
  FormulaPtr ParseImplies() {
    FormulaPtr lhs = ParseOr();
    if (Eat("=>")) return Formula::Implies(lhs, ParseImplies());
    return lhs;
  }

  FormulaPtr ParseOr() {
    FormulaPtr lhs = ParseAnd();
    while (Eat("||")) lhs = Formula::Or(lhs, ParseAnd());
    return lhs;
  }

  FormulaPtr ParseAnd() {
    FormulaPtr lhs = ParseUnary();
    while (Eat("&&")) lhs = Formula::And(lhs, ParseUnary());
    return lhs;
  }

  FormulaPtr ParseUnary() {
    SkipSpace();
    if (Eat("!")) return Formula::Not(ParseUnary());
    // The group must be parsed before the operand (argument evaluation
    // order is unspecified, so sequence explicitly).
    if (Eat("CK")) {
      const ProcessSet group = ParseGroup();
      return Formula::Common(group, ParseUnary());
    }
    if (Eat("E{")) {
      --pos_;  // give the '{' back to ParseGroup
      const ProcessSet group = ParseGroup();
      return Formula::Everyone(group, ParseUnary());
    }
    if (Eat("M{")) {
      --pos_;
      const ProcessSet group = ParseGroup();
      return Formula::Possible(group, ParseUnary());
    }
    if (Eat("Sure")) {
      const ProcessSet group = ParseGroup();
      return Formula::Sure(group, ParseUnary());
    }
    if (Eat("K")) {
      const ProcessSet group = ParseGroup();
      return Formula::Knows(group, ParseUnary());
    }
    if (Eat("(")) {
      FormulaPtr f = ParseImplies();
      if (!Eat(")")) throw ModelError("Formula parse: expected ')'");
      return f;
    }
    return ParseAtom();
  }

  ProcessSet ParseGroup() {
    if (!Eat("{")) throw ModelError("Formula parse: expected '{'");
    ProcessSet set;
    for (;;) {
      SkipSpace();
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      if (pos_ == start) throw ModelError("Formula parse: expected process id");
      set.Insert(std::stoi(text_.substr(start, pos_ - start)));
      if (Eat(",")) continue;
      if (Eat("}")) break;
      throw ModelError("Formula parse: expected ',' or '}'");
    }
    return set;
  }

  FormulaPtr ParseAtom() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_'))
      ++pos_;
    if (pos_ == start)
      throw ModelError("Formula parse: expected atom at " +
                       std::to_string(pos_));
    const std::string name = text_.substr(start, pos_ - start);
    if (name == "true") return Formula::Atom(Predicate::True());
    if (name == "false") return Formula::Atom(Predicate::False());
    for (const Predicate& p : atoms_)
      if (p.name() == name) return Formula::Atom(p);
    throw ModelError("Formula parse: unknown atom '" + name + "'");
  }

  const std::string& text_;
  const std::vector<Predicate>& atoms_;
  std::size_t pos_ = 0;
};

}  // namespace

FormulaPtr Formula::Parse(const std::string& text,
                          const std::vector<Predicate>& atoms) {
  return Parser(text, atoms).Parse();
}

// ---------------------------------------------------------------------------
// FormulaInterner
// ---------------------------------------------------------------------------
namespace {

// Rebuilds `f` with canonical children (used when a child interned to a
// different node than the one `f` holds).
FormulaPtr Rebuild(const Formula& f, FormulaPtr l, FormulaPtr r) {
  switch (f.kind()) {
    case FormulaKind::kAtom:
      return Formula::Atom(f.atom());
    case FormulaKind::kNot:
      return Formula::Not(std::move(l));
    case FormulaKind::kAnd:
      return Formula::And(std::move(l), std::move(r));
    case FormulaKind::kOr:
      return Formula::Or(std::move(l), std::move(r));
    case FormulaKind::kImplies:
      return Formula::Implies(std::move(l), std::move(r));
    case FormulaKind::kKnows:
      return Formula::Knows(f.group(), std::move(l));
    case FormulaKind::kSure:
      return Formula::Sure(f.group(), std::move(l));
    case FormulaKind::kCommon:
      return Formula::Common(f.group(), std::move(l));
    case FormulaKind::kEveryone:
      return Formula::Everyone(f.group(), std::move(l));
    case FormulaKind::kPossible:
      return Formula::Possible(f.group(), std::move(l));
  }
  throw ModelError("FormulaInterner: unknown formula kind");
}

void AppendRaw(std::string& key, const void* bytes, std::size_t size) {
  key.append(static_cast<const char*>(bytes), size);
}

}  // namespace

FormulaPtr FormulaInterner::Intern(const FormulaPtr& f) {
  if (!f) throw ModelError("FormulaInterner::Intern: null formula");
  return InternNode(f);
}

FormulaPtr FormulaInterner::InternNode(const FormulaPtr& f) {
  auto hit = by_node_.find(f.get());
  if (hit != by_node_.end()) return hit->second.canonical;

  FormulaPtr l = f->left() ? InternNode(f->left()) : nullptr;
  FormulaPtr r = f->right() ? InternNode(f->right()) : nullptr;

  // Structural key: kind + group bits, then the atom name (leaves) or the
  // canonical child pointers (interior nodes) — children are already
  // canonical, so structural equality reduces to pointer equality one level
  // down.  Canonical pointers are retained forever, so they are never
  // reused for a different node.
  std::string key;
  key.push_back(static_cast<char>(f->kind()));
  const std::uint64_t bits = f->group().bits();
  AppendRaw(key, &bits, sizeof(bits));
  if (f->kind() == FormulaKind::kAtom) {
    key += f->atom().name();
  } else {
    const Formula* lp = l.get();
    const Formula* rp = r.get();
    AppendRaw(key, &lp, sizeof(lp));
    AppendRaw(key, &rp, sizeof(rp));
  }

  FormulaPtr canonical;
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    canonical = it->second;
  } else {
    canonical = (l.get() == f->left().get() && r.get() == f->right().get())
                    ? f
                    : Rebuild(*f, std::move(l), std::move(r));
    by_key_.emplace(std::move(key), canonical);
  }
  by_node_.emplace(f.get(), Seen{f, canonical});
  if (canonical.get() != f.get())
    by_node_.emplace(canonical.get(), Seen{canonical, canonical});
  return canonical;
}

std::size_t FormulaInterner::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& [key, node] : by_key_)
    bytes += key.capacity() + sizeof(node) + sizeof(Formula);
  bytes += by_node_.size() * (sizeof(const Formula*) + sizeof(Seen));
  return bytes;
}

}  // namespace hpl
