#include "core/belief.h"

#include <algorithm>
#include <limits>

namespace hpl {

PlausibilityOrder PlausibilityOrder::Uniform() {
  return PlausibilityOrder("uniform", [](const Computation&) { return 0.0; });
}

PlausibilityOrder PlausibilityOrder::MinimalPending() {
  return PlausibilityOrder("minimal-pending", [](const Computation& x) {
    int pending = 0;
    for (const Event& e : x.events()) {
      if (e.IsSend()) ++pending;
      if (e.IsReceive()) --pending;
    }
    return static_cast<double>(pending);
  });
}

PlausibilityOrder PlausibilityOrder::MostAdvanced() {
  return PlausibilityOrder("most-advanced", [](const Computation& x) {
    return -static_cast<double>(x.size());
  });
}

BeliefEvaluator::BeliefEvaluator(const ComputationSpace& space,
                                 PlausibilityOrder order)
    : space_(space), order_(std::move(order)) {
  ranks_.reserve(space.size());
  for (std::size_t id = 0; id < space.size(); ++id)
    ranks_.push_back(order_.RankOf(space.At(id)));
}

std::vector<std::size_t> BeliefEvaluator::MostPlausible(
    ProcessSet p, std::size_t id) const {
  double best = std::numeric_limits<double>::infinity();
  space_.ForEachIsomorphic(id, p, [&](std::size_t y) {
    best = std::min(best, ranks_[y]);
  });
  std::vector<std::size_t> out;
  space_.ForEachIsomorphic(id, p, [&](std::size_t y) {
    if (ranks_[y] == best) out.push_back(y);
  });
  std::sort(out.begin(), out.end());
  return out;
}

bool BeliefEvaluator::Believes(ProcessSet p, const Predicate& b,
                               std::size_t id) {
  for (std::size_t y : MostPlausible(p, id))
    if (!b.Eval(space_.At(y))) return false;
  return true;
}

BeliefEvaluator::AxiomReport BeliefEvaluator::CheckAxioms(
    KnowledgeEvaluator& eval, const std::vector<Predicate>& predicates) {
  AxiomReport report;
  const ProcessSet groups[] = {ProcessSet{0}, ProcessSet{1}};
  for (const Predicate& b : predicates) {
    for (const ProcessSet p : groups) {
      // B_P b is constant on each [P]-class, so introspection reduces to
      // checking belief at the most-plausible members.
      for (std::size_t id = 0; id < space_.size(); ++id) {
        ++report.instances;
        const bool believes_b = Believes(p, b, id);
        // D: never believe the constant false.
        if (Believes(p, Predicate::False(), id))
          ++report.consistency_violations;
        // K (closure): with c := b || "space is nonempty"(true), trivial;
        // use a genuinely weaker consequence c := b-or-first-predicate.
        const Predicate c = b || predicates.front();
        if (believes_b && !Believes(p, c, id)) ++report.closure_violations;
        // 4/5: belief about one's own belief.  B_P b is constant per
        // [P]-class and the plausible worlds lie inside the class, so both
        // introspection axioms should hold; verify explicitly.
        const auto plausible = MostPlausible(p, id);
        bool all_believe = true, any_believes = false;
        for (std::size_t y : plausible) {
          if (Believes(p, b, y))
            any_believes = true;
          else
            all_believe = false;
        }
        // B b => B B b: every plausible world believes.
        if (believes_b && !all_believe) ++report.positive_introspection;
        // !B b => B !B b: no plausible world believes.
        if (!believes_b && any_believes) ++report.negative_introspection;
        // K b => B b.
        if (eval.Knows(p, b, id) && !believes_b)
          ++report.knowledge_implies_belief;
      }
    }
  }
  return report;
}

}  // namespace hpl
