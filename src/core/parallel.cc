#include "core/parallel.h"

#include <algorithm>

namespace hpl::internal {

int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  RunIndexed(count, [&fn](int, std::size_t i) { fn(i); });
}

void WorkerPool::RunIndexed(std::size_t count,
                            const std::function<void(int, std::size_t)>& fn) {
  if (count == 0) return;
  if (count < kMinParallelItems || target_threads_ == 0) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  if (threads_.empty()) {
    threads_.reserve(target_threads_);
    for (int t = 0; t < target_threads_; ++t)
      threads_.emplace_back([this, t] { WorkerLoop(t + 1); });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    count_ = count;
    chunk_ = std::max<std::size_t>(
        1, count / (static_cast<std::size_t>(size()) * 8));
    next_.store(0, std::memory_order_relaxed);
    pending_ = static_cast<int>(threads_.size());
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  Work(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void WorkerPool::WorkerLoop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    Work(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::Work(int worker) {
  for (;;) {
    const std::size_t begin =
        next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= count_) return;
    const std::size_t end = std::min(count_, begin + chunk_);
    try {
      if (!HasError())
        for (std::size_t i = begin; i < end; ++i) (*fn_)(worker, i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

bool WorkerPool::HasError() {
  std::lock_guard<std::mutex> lock(mu_);
  return error_ != nullptr;
}

namespace {

// Shared chunking logic for the range-sharded loops.
struct RangePlan {
  std::size_t chunk = 0;
  std::size_t num_chunks = 0;
};

RangePlan PlanRanges(WorkerPool* pool, std::size_t n, std::size_t align) {
  if (align == 0) align = 1;
  // Aim for several chunks per worker so dynamic claiming evens out skewed
  // per-id costs, but never chunks smaller than `align`.
  const std::size_t workers =
      pool == nullptr ? 1 : static_cast<std::size_t>(pool->size());
  std::size_t chunk = std::max<std::size_t>(align, n / (workers * 8));
  chunk = (chunk + align - 1) / align * align;
  return {chunk, (n + chunk - 1) / chunk};
}

}  // namespace

void ParallelFor(WorkerPool* pool, std::size_t n, std::size_t align,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const RangePlan plan = PlanRanges(pool, n, align);
  if (pool == nullptr || plan.num_chunks < 2) {
    fn(0, n);
    return;
  }
  pool->Run(plan.num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * plan.chunk;
    fn(begin, std::min(n, begin + plan.chunk));
  });
}

void ParallelForIndexed(
    WorkerPool* pool, std::size_t n, std::size_t align,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const RangePlan plan = PlanRanges(pool, n, align);
  if (pool == nullptr || plan.num_chunks < 2) {
    fn(0, 0, n);
    return;
  }
  pool->RunIndexed(plan.num_chunks, [&](int worker, std::size_t c) {
    const std::size_t begin = c * plan.chunk;
    fn(worker, begin, std::min(n, begin + plan.chunk));
  });
}

}  // namespace hpl::internal
