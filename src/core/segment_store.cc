#include "core/segment_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define HPL_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define HPL_HAVE_MMAP 0
#endif

namespace hpl {
namespace internal {
namespace {

namespace fs = std::filesystem;

// Segment file layout (all fields little-endian):
//   char     magic[8]     "HPLSEGM1"
//   u32      version      (1)
//   u32      segment      index within the column
//   char     tag[8]       column tag, NUL-padded
//   u64      bytes        payload byte count
//   u64      checksum     FNV-1a over the payload
//   u8[8]    reserved     zero (pads the header to 48 bytes, so the payload
//                          starts 8-byte aligned for mmap'd access)
//   u8[bytes] payload
constexpr char kSegMagic[8] = {'H', 'P', 'L', 'S', 'E', 'G', 'M', '1'};
constexpr std::uint32_t kSegVersion = 1;
constexpr std::size_t kSegHeaderBytes = 48;

// Same FNV-1a constants as the hpl-space snapshot format (serialization.cc).
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Fnv1a(const void* data, std::size_t n) {
  std::uint64_t h = kFnvOffset;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void PutU32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void PutU64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint32_t GetU32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}
std::uint64_t GetU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

[[noreturn]] void SegError(const std::string& file, const std::string& what) {
  throw ModelError("segment file '" + file + "': " + what);
}

}  // namespace

SegmentPin::SegmentPin(SegmentedSpaceStore* store, SegmentMeta* seg)
    : store_(store), seg_(seg) {
  if (store_ != nullptr && seg_ != nullptr) store_->Pin(seg_);
}

void SegmentPin::Release() {
  if (store_ != nullptr && seg_ != nullptr) store_->Unpin(seg_);
  store_ = nullptr;
  seg_ = nullptr;
}

SegmentedSpaceStore::~SegmentedSpaceStore() {
  std::error_code ec;
  for (auto& e : entries_) {
    auto* seg = e->meta.get();
    if (seg->map_base != nullptr) {
#if HPL_HAVE_MMAP
      ::munmap(seg->map_base, seg->map_len);
#endif
      seg->map_base = nullptr;
    }
    if (!seg->file.empty()) fs::remove(seg->file, ec);
  }
  if (owns_spill_dir_ && !spill_dir_.empty()) fs::remove(spill_dir_, ec);
}

SegmentMeta* SegmentedSpaceStore::Register(const char* tag,
                                           std::uint32_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = std::make_unique<Entry>();
  entry->tag = tag;
  entry->index = index;
  entry->uid = next_uid_++;
  entry->meta = std::make_unique<SegmentMeta>();
  auto* seg = entry->meta.get();
  seg->lru_tick = ++lru_clock_;
  entries_.push_back(std::move(entry));
  return seg;
}

SegmentedSpaceStore::Entry& SegmentedSpaceStore::EntryOf(SegmentMeta* seg) {
  for (auto& e : entries_)
    if (e->meta.get() == seg) return *e;
  throw ModelError("SegmentedSpaceStore: unknown segment");
}

void SegmentedSpaceStore::Seal(SegmentMeta* seg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (seg->sealed) return;
  seg->sealed = true;
  if (seg->state == SegmentState::kResident) {
    // shrink_to_fit may reallocate; republish the (possibly new) base.
    seg->heap.shrink_to_fit();
    seg->data.store(seg->heap.data(), std::memory_order_release);
  }
}

void SegmentedSpaceStore::Unseal(SegmentMeta* seg) {
  std::unique_lock<std::mutex> lock(mu_);
  if (seg->state != SegmentState::kResident) {
    Entry& e = EntryOf(seg);
    FaultInLocked(e);  // may map or heap-load
  }
  if (seg->state == SegmentState::kMapped) {
    // Convert the read-only mapping to private heap backing.
    seg->heap.assign(
        static_cast<const unsigned char*>(
            seg->data.load(std::memory_order_acquire)),
        static_cast<const unsigned char*>(
            seg->data.load(std::memory_order_acquire)) +
            seg->bytes);
#if HPL_HAVE_MMAP
    ::munmap(seg->map_base, seg->map_len);
#endif
    seg->map_base = nullptr;
    seg->map_len = 0;
    seg->state = SegmentState::kResident;
    seg->data.store(seg->heap.data(), std::memory_order_release);
  }
  seg->sealed = false;
  seg->dirty = true;
  seg->lru_tick = ++lru_clock_;
}

void SegmentedSpaceStore::Grew(SegmentMeta* seg, std::uint64_t new_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  seg->bytes = new_bytes;
  seg->dirty = true;
  seg->lru_tick = ++lru_clock_;
}

void SegmentedSpaceStore::Drop(SegmentMeta* seg) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& dropped = EntryOf(seg);
  if (seg->map_base != nullptr) {
#if HPL_HAVE_MMAP
    ::munmap(seg->map_base, seg->map_len);
#endif
    seg->map_base = nullptr;
  }
  if (!seg->file.empty()) {
    std::error_code ec;
    fs::remove(seg->file, ec);
  }
  entries_.erase(std::find_if(
      entries_.begin(), entries_.end(),
      [&](const std::unique_ptr<Entry>& e) { return e.get() == &dropped; }));
}

void SegmentedSpaceStore::Pin(SegmentMeta* seg) {
  std::lock_guard<std::mutex> lock(mu_);
  ++seg->pins;
  seg->lru_tick = ++lru_clock_;
}

void SegmentedSpaceStore::Unpin(SegmentMeta* seg) {
  std::lock_guard<std::mutex> lock(mu_);
  --seg->pins;
}

void SegmentedSpaceStore::EnsureSpillDir() {
  if (!spill_dir_.empty()) return;
  if (!options_.spill_dir.empty()) {
    fs::create_directories(options_.spill_dir);
    spill_dir_ = options_.spill_dir;
    owns_spill_dir_ = false;
    return;
  }
  // Fresh private directory under the system temp dir.
  static std::atomic<std::uint64_t> seq{0};
  const auto base = fs::temp_directory_path();
  const std::string name = "hpl-segments-" +
#if HPL_HAVE_MMAP
                           std::to_string(static_cast<long>(::getpid())) +
#else
                           std::string("p") +
#endif
                           "-" + std::to_string(seq.fetch_add(1));
  const fs::path dir = base / name;
  fs::create_directories(dir);
  spill_dir_ = dir.string();
  owns_spill_dir_ = true;
}

std::string SegmentedSpaceStore::SpillPath(const Entry& e) {
  EnsureSpillDir();
  // The uid (not the column-relative index) keys the file name, so a
  // replacement column (e.g. the canonical-index merge) never collides
  // with the files of the column it supersedes.
  return (fs::path(spill_dir_) /
          (e.tag + "-" + std::to_string(e.uid) + ".hplseg"))
      .string();
}

void SegmentedSpaceStore::SpillLocked(Entry& e) {
  auto* seg = e.meta.get();
  if (seg->state == SegmentState::kOnDisk) return;
  if (seg->dirty || seg->file.empty()) {
    const std::string path = SpillPath(e);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
      SegError(path, std::string("open for write failed: ") +
                         std::strerror(errno));
    unsigned char header[kSegHeaderBytes] = {};
    std::memcpy(header, kSegMagic, 8);
    PutU32(header + 8, kSegVersion);
    PutU32(header + 12, e.index);
    std::strncpy(reinterpret_cast<char*>(header + 16), e.tag.c_str(), 8);
    PutU64(header + 24, seg->bytes);
    const void* payload = seg->data.load(std::memory_order_acquire);
    PutU64(header + 32, Fnv1a(payload, seg->bytes));
    const bool ok =
        std::fwrite(header, 1, kSegHeaderBytes, f) == kSegHeaderBytes &&
        (seg->bytes == 0 ||
         std::fwrite(payload, 1, seg->bytes, f) == seg->bytes);
    if (std::fclose(f) != 0 || !ok) SegError(path, "write failed");
    seg->file = path;
    seg->dirty = false;
    ++writes_;
  }
  // Release the in-memory backing.
  seg->data.store(nullptr, std::memory_order_release);
  if (seg->map_base != nullptr) {
#if HPL_HAVE_MMAP
    ::munmap(seg->map_base, seg->map_len);
#endif
    seg->map_base = nullptr;
    seg->map_len = 0;
  }
  seg->heap.clear();
  seg->heap.shrink_to_fit();
  seg->state = SegmentState::kOnDisk;
}

const void* SegmentedSpaceStore::FaultIn(SegmentMeta* seg) {
  std::unique_lock<std::mutex> lock(mu_);
  // Double-check: another thread may have faulted it in while we waited.
  if (const void* p = seg->data.load(std::memory_order_acquire);
      p != nullptr) {
    seg->lru_tick = ++lru_clock_;
    return p;
  }
  return FaultInLocked(EntryOf(seg));
}

const void* SegmentedSpaceStore::FaultInLocked(Entry& e) {
  auto* seg = e.meta.get();
  if (const void* p = seg->data.load(std::memory_order_acquire);
      p != nullptr) {
    return p;
  }
  const std::string& path = seg->file;
  if (path.empty()) SegError(e.tag + "-" + std::to_string(e.index),
                             "segment missing from directory (never spilled)");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    SegError(path, std::string("missing segment: ") + std::strerror(errno));
  unsigned char header[kSegHeaderBytes];
  if (std::fread(header, 1, kSegHeaderBytes, f) != kSegHeaderBytes) {
    std::fclose(f);
    SegError(path, "truncated header (short read)");
  }
  if (std::memcmp(header, kSegMagic, 8) != 0) {
    std::fclose(f);
    SegError(path, "bad magic (not an hpl segment file)");
  }
  if (const std::uint32_t v = GetU32(header + 8); v != kSegVersion) {
    std::fclose(f);
    SegError(path, "unsupported segment version " + std::to_string(v) +
                       " (expected " + std::to_string(kSegVersion) + ")");
  }
  const std::uint64_t bytes = GetU64(header + 24);
  const std::uint64_t want_sum = GetU64(header + 32);
  if (bytes != seg->bytes) {
    std::fclose(f);
    SegError(path, "payload size mismatch (directory says " +
                       std::to_string(seg->bytes) + ", file says " +
                       std::to_string(bytes) + ")");
  }
  // Verify the payload is actually on disk before touching it: mapping past
  // EOF raises SIGBUS on access, so a short file must become a named error
  // here, not a crash inside the checksum scan.
  if (std::fseek(f, 0, SEEK_END) != 0 ||
      std::ftell(f) < static_cast<long>(kSegHeaderBytes + bytes)) {
    std::fclose(f);
    SegError(path, "truncated payload (short read)");
  }
  std::fseek(f, static_cast<long>(kSegHeaderBytes), SEEK_SET);
  const void* published = nullptr;
#if HPL_HAVE_MMAP
  {
    // Map header + payload read-only; payload starts at the 8-byte-aligned
    // kSegHeaderBytes offset.
    const long fd = ::fileno(f);
    const std::size_t map_len = kSegHeaderBytes + bytes;
    void* base = bytes == 0
                     ? nullptr
                     : ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE,
                              static_cast<int>(fd), 0);
    if (base != MAP_FAILED && base != nullptr) {
      const void* payload =
          static_cast<const unsigned char*>(base) + kSegHeaderBytes;
      if (Fnv1a(payload, bytes) != want_sum) {
        ::munmap(base, map_len);
        std::fclose(f);
        SegError(path, "checksum mismatch (corrupt segment)");
      }
      seg->map_base = base;
      seg->map_len = map_len;
      seg->state = SegmentState::kMapped;
      published = payload;
    }
  }
#endif
  if (published == nullptr) {
    // Heap fallback (mmap unavailable, failed, or zero-byte payload).
    // Reserve at least one byte so data() is non-null and publishable.
    seg->heap.reserve(bytes != 0 ? bytes : 1);
    seg->heap.resize(bytes);
    if (bytes != 0 &&
        std::fread(seg->heap.data(), 1, bytes, f) != bytes) {
      std::fclose(f);
      SegError(path, "truncated payload (short read)");
    }
    if (Fnv1a(seg->heap.data(), bytes) != want_sum) {
      std::fclose(f);
      SegError(path, "checksum mismatch (corrupt segment)");
    }
    seg->state = SegmentState::kResident;
    published = seg->heap.data();
  }
  std::fclose(f);
  seg->dirty = false;
  seg->lru_tick = ++lru_clock_;
  ++faults_;
  seg->data.store(published, std::memory_order_release);
  return published;
}

std::size_t SegmentedSpaceStore::EnforceBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.residency_budget_bytes == 0) return 0;
  std::uint64_t in_memory = 0;
  std::vector<Entry*> candidates;
  for (auto& e : entries_) {
    auto* seg = e->meta.get();
    if (seg->state == SegmentState::kOnDisk) continue;
    in_memory += seg->bytes;
    if (seg->sealed && seg->pins == 0) candidates.push_back(e.get());
  }
  if (in_memory <= options_.residency_budget_bytes) return 0;
  std::sort(candidates.begin(), candidates.end(), [](Entry* a, Entry* b) {
    return a->meta->lru_tick < b->meta->lru_tick;
  });
  std::size_t spilled = 0;
  for (Entry* e : candidates) {
    if (in_memory <= options_.residency_budget_bytes) break;
    in_memory -= e->meta->bytes;
    SpillLocked(*e);
    ++spilled;
  }
  return spilled;
}

std::size_t SegmentedSpaceStore::SpillSealed() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t spilled = 0;
  for (auto& e : entries_) {
    auto* seg = e->meta.get();
    if (seg->sealed && seg->pins == 0 &&
        seg->state != SegmentState::kOnDisk) {
      SpillLocked(*e);
      ++spilled;
    }
  }
  return spilled;
}

void SegmentedSpaceStore::MakeAllResident() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    auto* seg = e->meta.get();
    if (seg->state == SegmentState::kOnDisk) FaultInLocked(*e);
    if (seg->state == SegmentState::kMapped) {
      const auto* p = static_cast<const unsigned char*>(
          seg->data.load(std::memory_order_acquire));
      seg->heap.assign(p, p + seg->bytes);
#if HPL_HAVE_MMAP
      ::munmap(seg->map_base, seg->map_len);
#endif
      seg->map_base = nullptr;
      seg->map_len = 0;
      seg->state = SegmentState::kResident;
      seg->data.store(seg->heap.data(), std::memory_order_release);
    }
  }
}

SegmentedSpaceStore::Stats SegmentedSpaceStore::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.segments = entries_.size();
  s.spill_faults = faults_;
  s.spill_writes = writes_;
  for (const auto& e : entries_) {
    const auto* seg = e->meta.get();
    switch (seg->state) {
      case SegmentState::kResident:
        ++s.resident_segments;
        s.bytes_resident += seg->bytes;
        break;
      case SegmentState::kMapped:
        ++s.mapped_segments;
        s.bytes_mapped += seg->bytes;
        break;
      case SegmentState::kOnDisk:
        ++s.spilled_segments;
        s.bytes_spilled += seg->bytes;
        break;
    }
  }
  return s;
}

std::vector<SegmentedSpaceStore::SegmentInfo> SegmentedSpaceStore::Residency()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SegmentInfo> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    SegmentInfo info;
    info.tag = e->tag;
    info.index = e->index;
    info.state = e->meta->state;
    info.bytes = e->meta->bytes;
    info.pins = e->meta->pins;
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace internal
}  // namespace hpl
