#include "core/vector_clock.h"

#include <algorithm>

namespace hpl {

void VectorClock::MergeFrom(const VectorClock& other) {
  if (other.num_processes() != num_processes())
    throw ModelError("VectorClock::MergeFrom size mismatch");
  for (int i = 0; i < num_processes(); ++i)
    counts_[i] = std::max(counts_[i], other.counts_[i]);
}

bool VectorClock::LessEq(const VectorClock& other) const {
  if (other.num_processes() != num_processes())
    throw ModelError("VectorClock::LessEq size mismatch");
  for (int i = 0; i < num_processes(); ++i)
    if (counts_[i] > other.counts_[i]) return false;
  return true;
}

bool VectorClock::Less(const VectorClock& other) const {
  return LessEq(other) && counts_ != other.counts_;
}

bool VectorClock::ConcurrentWith(const VectorClock& other) const {
  return !LessEq(other) && !other.LessEq(*this);
}

std::string VectorClock::ToString() const {
  std::string out = "[";
  for (int i = 0; i < num_processes(); ++i) {
    if (i) out += ",";
    out += std::to_string(counts_[i]);
  }
  out += "]";
  return out;
}

}  // namespace hpl
