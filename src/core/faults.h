// Crash faults in the formal model (paper Section 5).
//
// The paper's failure model is crash-silence: "the process does not send
// messages after its failure."  We reify a crash as an internal event with
// the distinguished label kCrashLabel on the failing process.  That makes a
// failure pattern part of the computation itself — two runs that differ
// only in who crashed are different computations — while keeping the
// epistemics honest: an internal event is invisible to every other process,
// so no process can distinguish a crashed peer from a merely slow one
// without a message.  (That indistinguishability is exactly the Section-5
// lower-bound argument, and it is why the heartbeat detector must trade
// false suspicion against latency.)
//
// CrashFaultSystem wraps any base System with crash events: up to
// `max_crashes` processes may crash, a crashed process performs no further
// events, and the base system is consulted on the computation with the
// crash markers stripped (the underlying protocol does not branch on them).
// ComputationSpace::Enumerate over the wrapper therefore enumerates runs
// *with failure patterns*, and the "correct processes of this run" become a
// per-class group — dynamic group membership that FailurePatternIndex
// recovers and CommonAmongCorrect feeds to the [G]-layer one static group
// per distinct pattern.
#ifndef HPL_CORE_FAULTS_H_
#define HPL_CORE_FAULTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/computation.h"
#include "core/formula.h"
#include "core/knowledge.h"
#include "core/space.h"
#include "core/system.h"
#include "core/types.h"

namespace hpl {

// Labels shared with the simulator (sim::Simulator records the same labels
// when a process crashes or recovers), so ingested traces and enumerated
// fault spaces agree on what a crash looks like.
inline constexpr const char kCrashLabel[] = "crash";
inline constexpr const char kRecoverLabel[] = "recover";

// The crash of process p as a model event.
Event CrashEvent(ProcessId p);
bool IsCrashEvent(const Event& e);
bool IsRecoverEvent(const Event& e);
bool IsFaultMarker(const Event& e);

// Processes crashed (and not since recovered) at the end of x.
ProcessSet CrashedIn(const Computation& x);
// The correct processes of x: those that never crashed, plus any that
// recovered.  Per the paper's per-computation view, "correct" is a property
// of the whole run, evaluated here at its current end.
ProcessSet CorrectIn(const Computation& x, int num_processes);

struct CrashFaultOptions {
  // Maximum number of crash events (the f of "f < n/2").
  int max_crashes = 1;
  // Which processes may crash; empty means all of them.
  ProcessSet may_crash;
};

// A base system extended with crash events.  Enumeration interleaves every
// failure pattern with every base schedule, so the resulting space contains
// each base run once per compatible pattern.
class CrashFaultSystem : public System {
 public:
  // Borrowed base; must outlive this wrapper.
  CrashFaultSystem(const System& base, CrashFaultOptions options = {});
  // Owning variant for composed pipelines (e.g. the CLI's --crash flag).
  CrashFaultSystem(std::unique_ptr<const System> base,
                   CrashFaultOptions options = {});

  int NumProcesses() const override { return base_->NumProcesses(); }
  std::vector<Event> EnabledEvents(const Computation& x) const override;
  std::string Name() const override;

  const CrashFaultOptions& options() const noexcept { return options_; }

 private:
  std::unique_ptr<const System> owned_;
  const System* base_;
  CrashFaultOptions options_;
};

// Per-class failure patterns of an enumerated (or ingested) space: which
// processes have crashed in each [D]-class.  Computed in one pass over the
// successor CSR from the root, so it costs O(edges) regardless of depth.
class FailurePatternIndex {
 public:
  explicit FailurePatternIndex(const ComputationSpace& space);

  std::size_t size() const noexcept { return crashed_.size(); }
  ProcessSet CrashedAt(std::size_t id) const {
    return ProcessSet::FromBits(crashed_.at(id));
  }
  ProcessSet CorrectAt(std::size_t id) const {
    return CrashedAt(id).ComplementIn(all_);
  }
  ProcessSet AllProcesses() const noexcept { return all_; }
  // Distinct crash masks present in the space, ascending (the first is
  // always 0: the root has no crashes).
  const std::vector<std::uint64_t>& patterns() const noexcept {
    return patterns_;
  }

 private:
  std::vector<std::uint64_t> crashed_;
  std::vector<std::uint64_t> patterns_;
  ProcessSet all_;
};

// Per-class verdicts of "f is common knowledge among the correct processes
// of this computation": CK_{CorrectAt(id)}(f) at each id.  The dynamic
// group is resolved by issuing one static-group query per distinct failure
// pattern, which mints (and stresses) one [G]-index per pattern in the
// evaluator's group memo tier.  Classes where every process has crashed get
// verdict false by convention (an empty group knows nothing in common).
std::vector<std::uint8_t> CommonAmongCorrect(KnowledgeEvaluator& eval,
                                             const FailurePatternIndex& index,
                                             const FormulaPtr& f);

// Same resolution for "every correct process knows f": E_{CorrectAt(id)}(f).
std::vector<std::uint8_t> EveryoneCorrectKnows(KnowledgeEvaluator& eval,
                                               const FailurePatternIndex& index,
                                               const FormulaPtr& f);

}  // namespace hpl

#endif  // HPL_CORE_FAULTS_H_
