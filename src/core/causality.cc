#include "core/causality.h"

#include <unordered_map>

namespace hpl {

CausalityIndex::CausalityIndex(const Computation& z, int num_processes)
    : num_processes_(num_processes) {
  const auto& events = z.events();
  clocks_.reserve(events.size());
  local_index_.reserve(events.size());
  proc_.reserve(events.size());

  std::vector<VectorClock> latest(num_processes, VectorClock(num_processes));
  std::unordered_map<MessageId, std::size_t> send_of;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.process >= num_processes)
      throw ModelError("CausalityIndex: process id exceeds num_processes");
    VectorClock clock = latest[e.process];
    if (e.IsReceive()) {
      auto it = send_of.find(e.message);
      if (it == send_of.end())
        throw ModelError("CausalityIndex: receive without send");
      clock.MergeFrom(clocks_[it->second]);
    }
    clock.Increment(e.process);
    if (e.IsSend()) send_of.emplace(e.message, i);
    latest[e.process] = clock;
    local_index_.push_back(clock.Get(e.process));
    proc_.push_back(e.process);
    clocks_.push_back(std::move(clock));
  }
}

bool CausalityIndex::HappenedBefore(std::size_t i, std::size_t j) const {
  if (i == j) return true;  // e -> e per the paper's definition
  const ProcessId p = proc_.at(i);
  return clocks_.at(i).Get(p) <= clocks_.at(j).Get(p);
}

bool CausalityIndex::Concurrent(std::size_t i, std::size_t j) const {
  return i != j && !HappenedBefore(i, j) && !HappenedBefore(j, i);
}

}  // namespace hpl
