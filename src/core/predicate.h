// Predicates on system computations (paper Section 4.1).
//
// "Let b denote a predicate on system computations... We assume x [D] y
// implies b at x = b at y" — predicate values depend only on the
// [D]-equivalence class.  Our evaluator always applies predicates to
// canonical representatives, which enforces that assumption; authors of
// predicates should still write them in terms of projections / event
// multisets, never in terms of absolute positions across processes.
#ifndef HPL_CORE_PREDICATE_H_
#define HPL_CORE_PREDICATE_H_

#include <functional>
#include <memory>
#include <string>

#include "core/computation.h"
#include "core/types.h"

namespace hpl {

class Predicate {
 public:
  using Fn = std::function<bool(const Computation&)>;

  Predicate() = default;
  Predicate(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  bool Eval(const Computation& x) const {
    if (!fn_) throw ModelError("evaluating empty predicate");
    return fn_(x);
  }

  const std::string& name() const noexcept { return name_; }
  bool valid() const noexcept { return static_cast<bool>(fn_); }

  // --- Combinators -------------------------------------------------------
  Predicate operator!() const;
  Predicate operator&&(const Predicate& other) const;
  Predicate operator||(const Predicate& other) const;
  Predicate Implies(const Predicate& other) const;

  // --- Common constructors ----------------------------------------------
  // The constant predicates (paper: "a predicate is a constant means
  // b at x = b at y for all x, y").
  static Predicate True();
  static Predicate False();

  // Number of events on p (in any linearization) compared to k.
  static Predicate CountOnAtLeast(ProcessId p, int k);

  // Process p has performed an internal event with this label.
  static Predicate DidInternal(ProcessId p, std::string label);

  // Some event with the given label exists (on any process).
  static Predicate HasLabel(std::string label);

  // Message m has been sent / received.
  static Predicate Sent(MessageId m);
  static Predicate Received(MessageId m);

  // The number of sends with label `label` that are still undelivered == 0
  // and total events equals... (helper used by termination predicates): all
  // sent messages have been received.
  static Predicate AllMessagesDelivered();

 private:
  std::string name_;
  Fn fn_;
};

}  // namespace hpl

#endif  // HPL_CORE_PREDICATE_H_
