// Isomorphism between system computations (paper Section 3).
//
//   x [p] y  ==  x_p = y_p          (p cannot distinguish x from y)
//   x [P] y  ==  for all p in P: x [p] y
//   x [P0 P1 ... Pn] y  ==  exists y0..: x [P0] y0 [P1] y1 ... [Pn] y
//
// The composed relation quantifies over *all* system computations, so
// deciding it needs a computation space (see space.h); the plain relations
// are decidable from the two computations alone and live here, together
// with checkable statements of the paper's ten algebraic properties.
#ifndef HPL_CORE_ISOMORPHISM_H_
#define HPL_CORE_ISOMORPHISM_H_

#include <vector>

#include "core/computation.h"
#include "core/types.h"

namespace hpl {

// x [p] y.
bool IsomorphicWrt(const Computation& x, const Computation& y, ProcessId p);

// x [P] y.
bool IsomorphicWrt(const Computation& x, const Computation& y, ProcessSet set);

// The largest P with x [P] y, intersected with `universe` — the edge label
// of the isomorphism diagram (Figure 3-1).
ProcessSet MaxIsomorphismLabel(const Computation& x, const Computation& y,
                               ProcessSet universe);

// --- The paper's properties 1..10 as checkable predicates. ---------------
//
// Each function checks one algebraic property on concrete computations (and,
// where the property quantifies over computations, on a caller-supplied
// sample).  They return true when no violation is found; property tests feed
// them randomized systems.  Properties involving composed relations are
// checked against a ComputationSpace in knowledge/space tests instead.

// Property 1: [P] is an equivalence relation (reflexive, symmetric,
// transitive) over the given sample of computations.
bool CheckEquivalenceProperty(const std::vector<Computation>& sample,
                              ProcessSet set);

// Property 7: [P u Q] = [P] intersect [Q] on the given pair.
bool CheckUnionProperty(const Computation& x, const Computation& y,
                        ProcessSet p, ProcessSet q);

// Property 8 direction (Q superset of P) implies ([Q] subset of [P]): if
// x [Q] y then x [P] y for P subset of Q.
bool CheckMonotonicityProperty(const Computation& x, const Computation& y,
                               ProcessSet p, ProcessSet q);

}  // namespace hpl

#endif  // HPL_CORE_ISOMORPHISM_H_
