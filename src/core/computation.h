// System computations (paper Section 2).
//
// A *system computation* z is a finite sequence of events over the system's
// processes such that
//   (1) the projection z_p on every process p is a process computation, and
//   (2) every receive event in z has a corresponding send event occurring
//       earlier in z (same message id, matching endpoints).
// System computations are prefix closed; Computation validates (2) and the
// message-pairing discipline at construction time and is immutable
// afterwards, so a Computation value *is* evidence of well-formedness.
//
// Notation from the paper implemented here:
//   z_p        -> Projection(p)
//   y <= z     -> IsPrefixOf
//   (y, z)     -> SuffixAfter (events of z with prefix y removed)
//   (y; z)     -> Concat / Extended
//   x [D] y    -> IsPermutationOf (same events, possibly reordered)
#ifndef HPL_CORE_COMPUTATION_H_
#define HPL_CORE_COMPUTATION_H_

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/types.h"

namespace hpl {

class Computation {
 public:
  // The empty computation ("null" in the paper).
  Computation() = default;

  // Validates the sequence; throws ModelError if it is not a system
  // computation.
  explicit Computation(std::vector<Event> events);

  // Builds without validation.  Only for internal use on sequences already
  // known valid (e.g. prefixes of a valid computation).
  static Computation TrustedFromEvents(std::vector<Event> events);

  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  const Event& at(std::size_t i) const { return events_.at(i); }

  // z_p: the subsequence of events on process p.  (A projection is a
  // *process* computation, not a system computation, so it is returned as a
  // plain sequence.)
  std::vector<Event> Projection(ProcessId p) const;

  // Projection onto a set of processes, preserving order.
  std::vector<Event> ProjectionOnSet(ProcessSet set) const;

  // Number of events on process p (cheaper than Projection(p).size()).
  int CountOn(ProcessId p) const;

  // The set of processes that have at least one event in this computation.
  ProcessSet ActiveProcesses() const;

  // y <= z : y is a prefix of z (literal sequence prefix, as in the paper).
  bool IsPrefixOf(const Computation& z) const;

  // (y, z): the suffix of z after removing prefix y.  Throws if y is not a
  // prefix of z.
  std::vector<Event> SuffixAfter(const Computation& y) const;

  // (this; e): extension by one event, validated.
  Computation Extended(const Event& e) const;

  // (this; tail): concatenation, validated.
  Computation Concat(std::span<const Event> tail) const;

  // The prefix consisting of the first n events.
  Computation Prefix(std::size_t n) const;

  // x [D] y for the full process set: same events as a multiset *and*
  // identical per-process projections (the paper: x [D] y, x != y implies y
  // is a permutation of x).  Implemented as equality of canonical forms.
  bool IsPermutationOf(const Computation& other) const;

  // Deterministic canonical linearization of the event partial order: the
  // unique greedy topological order that always emits the eligible event of
  // the lowest-id process first.  Two computations are [D]-equivalent iff
  // their canonical forms are equal, so canonical forms make [D]-classes
  // hashable.
  Computation Canonical() const;

  // Canonical form of (*this; e), computed incrementally.  REQUIRES *this to
  // already be in canonical order (events() == Canonical().events()); then
  // Canonical() of the extension keeps every existing event in place —
  // nothing depends on the appended event — so the result is this sequence
  // with `e` spliced in at its greedy emission point.  One O(n) pass, no
  // per-process queues or hash sets; equal to Extended(e).Canonical() by
  // construction.  The enumeration hot loop lives on this.
  Computation CanonicalExtended(const Event& e) const;

  // The splice point of CanonicalExtended without building the extension:
  // the index at which the greedy scheduler emits `e` when it is appended to
  // this (canonically ordered) sequence.  CanonicalExtended(e) ==
  // events()[0, pos) ++ e ++ events()[pos, size()).  The columnar space
  // store records (parent, event, pos) per class and replays these splices
  // to materialize canonical sequences.
  std::size_t CanonicalInsertPos(const Event& e) const;

  // Stable structural hash of the canonical form.
  std::size_t CanonicalHash() const;

  // Stable structural hash of the literal sequence (order-sensitive).
  std::size_t SequenceHash() const;

  // Hash of the projection on p (order-sensitive); x [p] y iff the
  // projections are equal, and equal projections share this hash.
  std::size_t ProjectionHash(ProcessId p) const;

  // Index of the send event corresponding to the receive at index i, or
  // nullopt if event i is not a receive.  O(1) after construction.
  std::optional<std::size_t> CorrespondingSend(std::size_t i) const;

  bool operator==(const Computation& other) const {
    return events_ == other.events_;
  }

  std::string ToString() const;

 private:
  void Validate() const;
  std::vector<Event> events_;
};

// Checks whether appending `e` to `x` yields a valid system computation
// without constructing it (used by enumeration hot paths).
bool CanExtend(const Computation& x, const Event& e, std::string* why = nullptr);

// The order-sensitive fold behind Computation::SequenceHash, exposed so the
// columnar space store can hash a sequence it holds as interned event ids
// (folding precomputed per-event hashes) without materializing Event values:
//   SequenceHashFold fold(sequence length);
//   for each event: fold.Add(HashEvent(event));
//   fold.hash() == Computation(events...).SequenceHash()
class SequenceHashFold {
 public:
  explicit SequenceHashFold(std::size_t count) noexcept : h_(count) {}
  void Add(std::size_t event_hash) noexcept {
    h_ ^= event_hash + 0x9e3779b97f4a7c15ull + (h_ << 6) + (h_ >> 2);
  }
  std::size_t hash() const noexcept { return h_; }

 private:
  std::size_t h_;
};

}  // namespace hpl

#endif  // HPL_CORE_COMPUTATION_H_
