#include "core/kernel.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace hpl::kernel {
namespace {

// Bits of plane word `w` that correspond to real ids/classes (the last word
// of an n-bit plane is only partially populated).
std::uint64_t LiveMask(std::size_t n, std::size_t w) {
  const std::size_t tail = n - w * 64;
  return tail >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

// Syntactic locality (the compile-time half of IsLocalTo): true when `f` is
// provably constant on the [view]-indistinguishability classes.  Sound S5
// reasoning over equivalence relations:
//   - K/Sure/M/E{H} g is constant on [H]-classes, and [view] refines [H]
//     whenever H is a subset of view, so H subset-of view suffices.
//   - CK{G} g is constant on every member's [p]-classes individually (a
//     whole [p]-bucket sits inside one component), so any p in both G and
//     view suffices.
//   - Propositional combinations of view-constant formulas stay constant.
// Under K{P} / M{P} a P-constant child collapses the quantifier to the
// child itself; under Sure{P} it collapses to `true`.
bool ViewConstant(const Formula* f, ProcessSet view) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
      return false;
    case FormulaKind::kNot:
      return ViewConstant(f->left().get(), view);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
      return ViewConstant(f->left().get(), view) &&
             ViewConstant(f->right().get(), view);
    case FormulaKind::kKnows:
    case FormulaKind::kSure:
    case FormulaKind::kPossible:
    case FormulaKind::kEveryone: {
      const std::uint64_t g = f->group().bits();
      return g != 0 && (g & ~view.bits()) == 0;
    }
    case FormulaKind::kCommon:
      return (f->group().bits() & view.bits()) != 0;
  }
  return false;
}

}  // namespace

std::size_t KernelProgram::MemoryBytes() const {
  return sizeof(*this) + ops.capacity() * sizeof(Op) +
         (completed.capacity() + roots.capacity()) * sizeof(std::uint32_t);
}

bool Compile(const ComputationSpace& space,
             std::span<const CompileNode> postorder,
             std::span<const std::uint32_t> roots, KernelProgram* out) {
  KernelProgram p;
  std::unordered_map<const Formula*, Slot> slot_of;
  std::unordered_set<std::uint32_t> root_set(roots.begin(), roots.end());
  std::unordered_set<std::uint32_t> completed_set;
  // Register dsts carry a dense "value id" until the liveness pass below
  // assigns physical registers; last_use[v] is the index of v's final
  // consumer op (-1 = never read).
  std::vector<std::int64_t> last_use;

  auto use = [&](const Formula* f) {
    const Slot s = slot_of.at(f);
    if (!s.dense) last_use[s.index] = static_cast<std::int64_t>(p.ops.size());
    return s;
  };
  auto mark_complete = [&](std::uint32_t node) {
    if (completed_set.insert(node).second) p.completed.push_back(node);
  };

  for (const CompileNode& cn : postorder) {
    const Formula* f = cn.f;
    if (cn.complete) {
      slot_of[f] = Slot{cn.node, true};
      continue;
    }
    const bool is_root = root_set.contains(cn.node);
    auto make_dst = [&]() -> Slot {
      if (is_root) {
        mark_complete(cn.node);
        return Slot{cn.node, true};
      }
      last_use.push_back(-1);
      return Slot{static_cast<std::uint32_t>(last_use.size() - 1), false};
    };
    auto emit = [&](Op op) {
      slot_of[f] = op.dst;
      p.ops.push_back(op);
    };
    // Fold K{P}/M{P}/E{G} of a view-constant child to the child itself: no
    // op off the root path, a kCopy to the root's dense row otherwise.
    auto alias_child = [&]() {
      if (!is_root) {
        slot_of[f] = slot_of.at(f->left().get());
        return;
      }
      Op op;
      op.code = OpCode::kCopy;
      op.a = use(f->left().get());
      op.dst = make_dst();
      emit(op);
    };

    switch (f->kind()) {
      case FormulaKind::kAtom: {
        Op op;
        op.code = OpCode::kLoadAtomPlane;
        op.node = f;
        op.dst = Slot{cn.node, true};
        mark_complete(cn.node);
        emit(op);
        break;
      }
      case FormulaKind::kNot: {
        Op op;
        op.code = OpCode::kNot;
        op.a = use(f->left().get());
        op.dst = make_dst();
        emit(op);
        break;
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
      case FormulaKind::kImplies: {
        Op op;
        op.code = f->kind() == FormulaKind::kAnd  ? OpCode::kAnd
                  : f->kind() == FormulaKind::kOr ? OpCode::kOr
                                                  : OpCode::kImplies;
        op.a = use(f->left().get());
        op.b = use(f->right().get());
        op.dst = make_dst();
        emit(op);
        break;
      }
      case FormulaKind::kKnows:
      case FormulaKind::kSure:
      case FormulaKind::kPossible: {
        const ProcessSet group = f->group();
        if (group.IsEmpty()) return false;  // interpreter handles these
        if (ViewConstant(f->left().get(), group)) {
          if (f->kind() == FormulaKind::kSure) {
            Op op;
            op.code = OpCode::kLoadConst;
            op.const_value = true;
            op.dst = make_dst();
            emit(op);
          } else {
            alias_child();
          }
          break;
        }
        Op op;
        op.code = OpCode::kKnowSeg;
        op.quant = f->kind() == FormulaKind::kKnows      ? Quant::kForAll
                   : f->kind() == FormulaKind::kPossible ? Quant::kExists
                                                         : Quant::kSure;
        if (group.Size() == 1)
          op.process = group.First();
        else
          op.index = &space.EnsureGroupIndex(group);
        op.node = f;
        op.seg = cn.seg_begin;
        op.a = use(f->left().get());
        op.dst = make_dst();
        emit(op);
        break;
      }
      case FormulaKind::kEveryone: {
        const ProcessSet group = f->group();
        if (group.IsEmpty()) return false;
        bool member_local = true;
        group.ForEach([&](ProcessId q) {
          member_local =
              member_local && ViewConstant(f->left().get(), ProcessSet::Of(q));
        });
        if (member_local) {
          // E{G} f == AND of K{p} f == f when f is local to every member.
          alias_child();
          break;
        }
        if (group.Size() == 1) {
          // E{p} == K{p}: one forall row over the [p]-classes.
          Op op;
          op.code = OpCode::kKnowSeg;
          op.quant = Quant::kForAll;
          op.process = group.First();
          op.node = f;
          op.seg = cn.seg_begin;
          op.a = use(f->left().get());
          op.dst = make_dst();
          emit(op);
          break;
        }
        Op op;
        op.code = OpCode::kEveryoneSeg;
        op.node = f;
        op.seg = cn.seg_begin;
        if (cn.seg_begin != kNoSegment)
          op.index = &space.EnsureGroupIndex(group);
        op.a = use(f->left().get());
        op.dst = make_dst();
        emit(op);
        break;
      }
      case FormulaKind::kCommon: {
        if (f->group().IsEmpty()) return false;
        Op op;
        op.code = OpCode::kCkComponent;
        op.node = f;
        op.a = use(f->left().get());
        op.dst = make_dst();
        emit(op);
        break;
      }
    }
  }

  p.pointwise =
      std::none_of(p.ops.begin(), p.ops.end(), [](const Op& op) {
        return op.code == OpCode::kKnowSeg || op.code == OpCode::kEveryoneSeg ||
               op.code == OpCode::kCkComponent;
      });
  p.roots.assign(roots.begin(), roots.end());

  // Liveness register assignment: linear scan over the emitted ops, one
  // physical register per live value.  The dst is allocated before its
  // operands are released, so an op never aliases input and output planes
  // (kEveryoneSeg accumulates into dst while re-reading its child).
  std::vector<std::uint32_t> reg_of(last_use.size(), UINT32_MAX);
  std::vector<std::uint32_t> free_regs;
  std::uint32_t high_water = 0;
  for (std::size_t i = 0; i < p.ops.size(); ++i) {
    Op& op = p.ops[i];
    const std::uint32_t va = op.a.dense ? UINT32_MAX : op.a.index;
    const std::uint32_t vb = op.b.dense ? UINT32_MAX : op.b.index;
    std::uint32_t dead_dst_reg = UINT32_MAX;
    if (!op.dst.dense) {
      const std::uint32_t v = op.dst.index;
      std::uint32_t r;
      if (free_regs.empty()) {
        r = high_water++;
      } else {
        r = free_regs.back();
        free_regs.pop_back();
      }
      reg_of[v] = r;
      op.dst.index = r;
      if (last_use[v] < 0) dead_dst_reg = r;  // value with no consumer
    }
    if (va != UINT32_MAX) op.a.index = reg_of[va];
    if (vb != UINT32_MAX) op.b.index = reg_of[vb];
    if (va != UINT32_MAX && last_use[va] == static_cast<std::int64_t>(i))
      free_regs.push_back(reg_of[va]);
    if (vb != UINT32_MAX && vb != va &&
        last_use[vb] == static_cast<std::int64_t>(i))
      free_regs.push_back(reg_of[vb]);
    if (dead_dst_reg != UINT32_MAX) free_regs.push_back(dead_dst_reg);
  }
  p.num_registers = high_water;

  *out = std::move(p);
  return true;
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------
namespace {

using Regs = std::vector<std::vector<std::uint64_t>>;

std::uint64_t* DenseKnownRow(const ExecContext& ctx, std::uint32_t node) {
  return ctx.dense_known + static_cast<std::size_t>(node) * ctx.words;
}
std::uint64_t* DenseValueRow(const ExecContext& ctx, std::uint32_t node) {
  return ctx.dense_value + static_cast<std::size_t>(node) * ctx.words;
}

std::uint64_t ReadWord(const ExecContext& ctx, const Regs& regs, Slot s,
                       std::size_t w) {
  return s.dense ? DenseValueRow(ctx, s.index)[w] : regs[s.index][w];
}

std::uint64_t ReadBit(const ExecContext& ctx, const Regs& regs, Slot s,
                      std::size_t id) {
  return (ReadWord(ctx, regs, s, id / 64) >> (id % 64)) & 1;
}

// Whole-word store; dense rows also get their known word completed, so one
// run leaves the row whole-space memoized.
void StoreWord(const ExecContext& ctx, Regs& regs, Slot s, std::size_t w,
               std::uint64_t word) {
  if (s.dense) {
    DenseValueRow(ctx, s.index)[w] = word;
    DenseKnownRow(ctx, s.index)[w] = LiveMask(ctx.n, w);
  } else {
    regs[s.index][w] = word;
  }
}

enum class FoldScan { kMixed, kAllTrue, kAllFalse };

// The run-time constant fold (IsConstant inlined): one O(n/64) scan of the
// child plane decides every bucket verdict when the child is constant.
FoldScan ScanConstant(const ExecContext& ctx, const Regs& regs, Slot s) {
  bool all_true = true, all_false = true;
  for (std::size_t w = 0; w < ctx.words && (all_true || all_false); ++w) {
    const std::uint64_t live = LiveMask(ctx.n, w);
    const std::uint64_t v = ReadWord(ctx, regs, s, w) & live;
    if (v != live) all_true = false;
    if (v != 0) all_false = false;
  }
  if (all_true) return FoldScan::kAllTrue;
  if (all_false) return FoldScan::kAllFalse;
  return FoldScan::kMixed;
}

void FillPlane(const ExecContext& ctx, Regs& regs, Slot dst, bool value) {
  for (std::size_t w = 0; w < ctx.words; ++w)
    StoreWord(ctx, regs, dst, w, value ? LiveMask(ctx.n, w) : 0);
}

// Completes a tier row wholesale: every class known, every verdict `value`.
void FillRow(std::uint64_t* row_known, std::uint64_t* row_value,
             std::size_t classes, bool value) {
  const std::size_t row_words = (classes + 63) / 64;
  for (std::size_t w = 0; w < row_words; ++w) {
    const std::uint64_t mask = LiveMask(classes, w);
    row_known[w] = mask;
    row_value[w] = value ? mask : 0;
  }
}

// The atom pass shared by both execution modes: per 64-id word, verdicts
// seeded from bits earlier pointwise queries memoized, the rest evaluated
// against the materialized computation; the dense row comes out complete.
void LoadAtomRange(const ExecContext& ctx, const Op& op, std::size_t begin,
                   std::size_t end) {
  const Predicate& atom = op.node->atom();
  std::uint64_t* known_row = DenseKnownRow(ctx, op.dst.index);
  std::uint64_t* value_row = DenseValueRow(ctx, op.dst.index);
  for (std::size_t w = begin / 64; w * 64 < end; ++w) {
    const std::uint64_t known = known_row[w];
    std::uint64_t value = value_row[w] & known;
    const std::size_t id_end = std::min(end, w * 64 + 64);
    for (std::size_t id = w * 64; id < id_end; ++id) {
      const std::uint64_t bit = std::uint64_t{1} << (id % 64);
      if (known & bit) continue;
      if (atom.Eval(ctx.space->At(id))) value |= bit;
    }
    value_row[w] = value;
    known_row[w] = LiveMask(ctx.n, w);
  }
}

// One pointwise op over the word range [wb, we) — the fused-mode inner loop
// and the sharded body of segmented-mode boolean passes.
void RunPointwiseOp(const ExecContext& ctx, Regs& regs, const Op& op,
                    std::size_t wb, std::size_t we) {
  switch (op.code) {
    case OpCode::kLoadConst:
      for (std::size_t w = wb; w < we; ++w)
        StoreWord(ctx, regs, op.dst, w,
                  op.const_value ? LiveMask(ctx.n, w) : 0);
      break;
    case OpCode::kLoadAtomPlane:
      LoadAtomRange(ctx, op, wb * 64, std::min(ctx.n, we * 64));
      break;
    case OpCode::kCopy:
      for (std::size_t w = wb; w < we; ++w)
        StoreWord(ctx, regs, op.dst, w, ReadWord(ctx, regs, op.a, w));
      break;
    case OpCode::kNot:
      for (std::size_t w = wb; w < we; ++w)
        StoreWord(ctx, regs, op.dst, w,
                  ~ReadWord(ctx, regs, op.a, w) & LiveMask(ctx.n, w));
      break;
    case OpCode::kAnd:
      for (std::size_t w = wb; w < we; ++w)
        StoreWord(ctx, regs, op.dst, w,
                  ReadWord(ctx, regs, op.a, w) & ReadWord(ctx, regs, op.b, w));
      break;
    case OpCode::kOr:
      for (std::size_t w = wb; w < we; ++w)
        StoreWord(ctx, regs, op.dst, w,
                  ReadWord(ctx, regs, op.a, w) | ReadWord(ctx, regs, op.b, w));
      break;
    case OpCode::kImplies:
      for (std::size_t w = wb; w < we; ++w)
        StoreWord(ctx, regs, op.dst, w,
                  (~ReadWord(ctx, regs, op.a, w) |
                   ReadWord(ctx, regs, op.b, w)) &
                      LiveMask(ctx.n, w));
      break;
    default:
      throw ModelError("kernel: segment op in a pointwise pass");
  }
}

// Phase A of a segment op: the per-class quantifier sweep over one row.
// Chunks are 64-class aligned, so each row word is owned by one chunk;
// seeded (known) classes keep their memoized verdict, exactly like the
// interpreter's BucketVerdict probe.
void SweepRowRange(const ExecContext& ctx, const Regs& regs, Slot child,
                   Quant quant, const ComputationSpace::GroupIndex* index,
                   ProcessId process, std::uint64_t* row_known,
                   std::uint64_t* row_value, std::size_t begin,
                   std::size_t end) {
  for (std::size_t w = begin / 64; w * 64 < end; ++w) {
    std::uint64_t known = row_known[w];
    std::uint64_t value = row_value[w];
    const std::size_t c_end = std::min(end, w * 64 + 64);
    for (std::size_t c = w * 64; c < c_end; ++c) {
      const std::uint64_t bit = std::uint64_t{1} << (c % 64);
      if (known & bit) continue;
      const std::span<const std::uint32_t> bucket =
          index != nullptr ? index->Bucket(static_cast<std::uint32_t>(c))
                           : ctx.space->Bucket(process,
                                               static_cast<std::uint32_t>(c));
      bool verdict;
      switch (quant) {
        case Quant::kForAll: {
          verdict = true;
          for (std::uint32_t y : bucket)
            if (!ReadBit(ctx, regs, child, y)) {
              verdict = false;
              break;
            }
          break;
        }
        case Quant::kExists: {
          verdict = false;
          for (std::uint32_t y : bucket)
            if (ReadBit(ctx, regs, child, y)) {
              verdict = true;
              break;
            }
          break;
        }
        case Quant::kSure: {
          bool all_true = true, all_false = true;
          for (std::uint32_t y : bucket) {
            if (ReadBit(ctx, regs, child, y))
              all_false = false;
            else
              all_true = false;
            if (!all_true && !all_false) break;
          }
          verdict = all_true || all_false;
          break;
        }
        default:
          verdict = false;
      }
      known |= bit;
      if (verdict) value |= bit;
    }
    row_known[w] = known;
    row_value[w] = value;
  }
}

// Phase B: scatter per-class verdicts back to the id plane.
template <typename ClassOfFn>
void ScatterRange(const ExecContext& ctx, Regs& regs, Slot dst,
                  const std::uint64_t* row_value, ClassOfFn&& class_of,
                  std::size_t begin, std::size_t end) {
  for (std::size_t w = begin / 64; w * 64 < end; ++w) {
    std::uint64_t word = 0;
    const std::size_t id_end = std::min(end, w * 64 + 64);
    for (std::size_t id = w * 64; id < id_end; ++id) {
      const std::uint32_t cls = class_of(id);
      if ((row_value[cls / 64] >> (cls % 64)) & 1)
        word |= std::uint64_t{1} << (id % 64);
    }
    StoreWord(ctx, regs, dst, w, word);
  }
}

struct RowPtrs {
  std::uint64_t* known;
  std::uint64_t* value;
};

// Locates a tier row in the shared bucket planes, or carves scratch space
// (known zeroed: nothing seeded) when the node has no tier row.
RowPtrs LocateRow(const ExecContext& ctx, std::uint32_t seg,
                  std::size_t classes, std::vector<std::uint64_t>& scratch) {
  if (seg != kNoSegment)
    return RowPtrs{ctx.bucket_known + ctx.seg_offset[seg],
                   ctx.bucket_value + ctx.seg_offset[seg]};
  const std::size_t row_words = (classes + 63) / 64;
  scratch.assign(2 * row_words, 0);
  return RowPtrs{scratch.data(), scratch.data() + row_words};
}

void ExecKnowSeg(const ExecContext& ctx, Regs& regs, const Op& op) {
  const bool grouped = op.index != nullptr;
  const std::size_t classes =
      grouped ? op.index->NumClasses()
              : ctx.space->NumProjectionClasses(op.process);
  const RowPtrs row = LocateRow(ctx, op.seg, classes, *ctx.row_scratch);

  const FoldScan fold = ScanConstant(ctx, regs, op.a);
  if (fold != FoldScan::kMixed) {
    // Constant child: forall == exists == the constant (buckets are
    // reflexive, never empty), sure == true either way.
    const bool verdict =
        op.quant == Quant::kSure ? true : fold == FoldScan::kAllTrue;
    if (op.seg != kNoSegment) FillRow(row.known, row.value, classes, verdict);
    FillPlane(ctx, regs, op.dst, verdict);
    return;
  }

  internal::ParallelFor(ctx.pool, classes, /*align=*/64,
                        [&](std::size_t b, std::size_t e) {
                          SweepRowRange(ctx, regs, op.a, op.quant, op.index,
                                        op.process, row.known, row.value, b,
                                        e);
                        });
  internal::ParallelFor(
      ctx.pool, ctx.n, /*align=*/64, [&](std::size_t b, std::size_t e) {
        if (grouped)
          ScatterRange(ctx, regs, op.dst, row.value,
                       [&](std::size_t id) { return op.index->ClassOf(id); },
                       b, e);
        else
          ScatterRange(ctx, regs, op.dst, row.value,
                       [&](std::size_t id) {
                         return ctx.space->ProjectionClass(id, op.process);
                       },
                       b, e);
      });
}

void ExecEveryoneSeg(const ExecContext& ctx, Regs& regs, const Op& op) {
  std::vector<ProcessId> members;
  op.node->group().ForEach([&](ProcessId q) { members.push_back(q); });

  const FoldScan fold = ScanConstant(ctx, regs, op.a);
  if (fold != FoldScan::kMixed) {
    const bool verdict = fold == FoldScan::kAllTrue;
    if (op.seg != kNoSegment) {
      FillRow(ctx.bucket_known + ctx.seg_offset[op.seg],
              ctx.bucket_value + ctx.seg_offset[op.seg],
              op.index->NumClasses(), verdict);
      for (std::size_t k = 0; k < members.size(); ++k) {
        const std::uint32_t seg = op.seg + 1 + static_cast<std::uint32_t>(k);
        FillRow(ctx.bucket_known + ctx.seg_offset[seg],
                ctx.bucket_value + ctx.seg_offset[seg],
                ctx.space->NumProjectionClasses(members[k]), verdict);
      }
    }
    FillPlane(ctx, regs, op.dst, verdict);
    return;
  }

  for (std::size_t k = 0; k < members.size(); ++k) {
    const ProcessId q = members[k];
    const std::size_t classes = ctx.space->NumProjectionClasses(q);
    const std::uint32_t seg =
        op.seg != kNoSegment ? op.seg + 1 + static_cast<std::uint32_t>(k)
                             : kNoSegment;
    const RowPtrs row = LocateRow(ctx, seg, classes, *ctx.row_scratch);
    internal::ParallelFor(ctx.pool, classes, /*align=*/64,
                          [&](std::size_t b, std::size_t e) {
                            SweepRowRange(ctx, regs, op.a, Quant::kForAll,
                                          nullptr, q, row.known, row.value, b,
                                          e);
                          });
    // Fold this member's K{q} plane into dst with word-AND.
    const bool first = k == 0;
    internal::ParallelFor(
        ctx.pool, ctx.n, /*align=*/64, [&](std::size_t b, std::size_t e) {
          for (std::size_t w = b / 64; w * 64 < e; ++w) {
            std::uint64_t word = 0;
            const std::size_t id_end = std::min(e, w * 64 + 64);
            for (std::size_t id = w * 64; id < id_end; ++id) {
              const std::uint32_t cls = ctx.space->ProjectionClass(id, q);
              if ((row.value[cls / 64] >> (cls % 64)) & 1)
                word |= std::uint64_t{1} << (id % 64);
            }
            if (!first) word &= ReadWord(ctx, regs, op.dst, w);
            StoreWord(ctx, regs, op.dst, w, word);
          }
        });
  }

  if (op.seg != kNoSegment) {
    // Complete the [G]-aggregation row from the finished plane: the E
    // verdict is constant on the [G]-class, so the representative's bit is
    // the row cell.
    std::uint64_t* agg_known = ctx.bucket_known + ctx.seg_offset[op.seg];
    std::uint64_t* agg_value = ctx.bucket_value + ctx.seg_offset[op.seg];
    const std::size_t classes = op.index->NumClasses();
    internal::ParallelFor(
        ctx.pool, classes, /*align=*/64, [&](std::size_t b, std::size_t e) {
          for (std::size_t w = b / 64; w * 64 < e; ++w) {
            std::uint64_t known = agg_known[w];
            std::uint64_t value = agg_value[w];
            const std::size_t c_end = std::min(e, w * 64 + 64);
            for (std::size_t c = w * 64; c < c_end; ++c) {
              const std::uint64_t bit = std::uint64_t{1} << (c % 64);
              if (known & bit) continue;
              known |= bit;
              if (ReadBit(ctx, regs, op.dst,
                          op.index->Representative(
                              static_cast<std::uint32_t>(c))))
                value |= bit;
            }
            agg_known[w] = known;
            agg_value[w] = value;
          }
        });
  }
}

void ExecCkComponent(const ExecContext& ctx, Regs& regs, const Op& op) {
  const FoldScan fold = ScanConstant(ctx, regs, op.a);
  if (fold != FoldScan::kMixed) {
    FillPlane(ctx, regs, op.dst, fold == FoldScan::kAllTrue);
    return;
  }
  const std::span<const std::uint32_t> roots = ctx.ck_roots(op.node);
  // comp[r] = AND of the child plane over the component labeled r: start
  // all-true, clear the label of every id where the child fails.  One
  // sequential O(n) bit pass — the scatter below is the parallel part.
  std::vector<std::uint64_t>& comp = *ctx.comp_scratch;
  comp.assign(ctx.words, ~std::uint64_t{0});
  for (std::size_t w = 0; w < ctx.words; ++w) {
    std::uint64_t miss =
        ~ReadWord(ctx, regs, op.a, w) & LiveMask(ctx.n, w);
    while (miss != 0) {
      const std::size_t id =
          w * 64 + static_cast<std::size_t>(__builtin_ctzll(miss));
      const std::uint32_t r = roots[id];
      comp[r / 64] &= ~(std::uint64_t{1} << (r % 64));
      miss &= miss - 1;
    }
  }
  internal::ParallelFor(
      ctx.pool, ctx.n, /*align=*/64, [&](std::size_t b, std::size_t e) {
        ScatterRange(ctx, regs, op.dst, comp.data(),
                     [&](std::size_t id) { return roots[id]; }, b, e);
      });
}

}  // namespace

void Execute(const KernelProgram& program, const ExecContext& ctx) {
  if (ctx.n == 0) return;
  std::vector<Regs>& pools = *ctx.worker_regs;
  const int workers =
      program.pointwise && ctx.pool != nullptr ? ctx.pool->size() : 1;
  if (pools.size() < static_cast<std::size_t>(workers))
    pools.resize(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    Regs& regs = pools[static_cast<std::size_t>(i)];
    if (regs.size() < program.num_registers) regs.resize(program.num_registers);
    for (std::uint32_t r = 0; r < program.num_registers; ++r)
      if (regs[r].size() != ctx.words) regs[r].resize(ctx.words);
  }

  if (program.pointwise) {
    // Fused mode: every op is word-local, so each worker streams its
    // 64-aligned id chunks through the whole op array with private
    // registers — one pass, no barriers, registers hot in cache.
    internal::ParallelForIndexed(
        ctx.pool, ctx.n, /*align=*/64,
        [&](int worker, std::size_t begin, std::size_t end) {
          Regs& regs = pools[static_cast<std::size_t>(worker)];
          const std::size_t wb = begin / 64;
          const std::size_t we = (end + 63) / 64;
          for (const Op& op : program.ops)
            RunPointwiseOp(ctx, regs, op, wb, we);
        });
    if (ctx.space->out_of_core()) ctx.space->TrimResidency();
    return;
  }

  // Segmented mode: one barrier pass per op; 64-aligned chunks keep every
  // shared plane word single-writer within a pass, and the pass barrier
  // orders the next op's reads after this op's writes.  Each pass barrier
  // is a quiescent point for the segment store, so an out-of-core space
  // trims residency between ops — the kernel streams the space's segments
  // op by op instead of faulting the whole space resident.
  Regs& regs = pools[0];
  for (const Op& op : program.ops) {
    if (ctx.space->out_of_core()) ctx.space->TrimResidency();
    switch (op.code) {
      case OpCode::kKnowSeg:
        ExecKnowSeg(ctx, regs, op);
        break;
      case OpCode::kEveryoneSeg:
        ExecEveryoneSeg(ctx, regs, op);
        break;
      case OpCode::kCkComponent:
        ExecCkComponent(ctx, regs, op);
        break;
      case OpCode::kLoadAtomPlane:
        internal::ParallelFor(ctx.pool, ctx.n, /*align=*/64,
                              [&](std::size_t b, std::size_t e) {
                                LoadAtomRange(ctx, op, b, e);
                              });
        break;
      default:
        internal::ParallelFor(ctx.pool, ctx.words, /*align=*/1,
                              [&](std::size_t wb, std::size_t we) {
                                RunPointwiseOp(ctx, regs, op, wb, we);
                              });
        break;
    }
  }
  if (ctx.space->out_of_core()) ctx.space->TrimResidency();
}

}  // namespace hpl::kernel
