#include "core/state_view.h"

#include <algorithm>
#include <map>

namespace hpl {

StateAbstraction StateAbstraction::FullHistory() {
  return StateAbstraction(
      "full-history", [](ProcessId, std::span<const Event> projection) {
        std::string key;
        for (const Event& e : projection) key += e.ToString() + ";";
        return key;
      });
}

StateAbstraction StateAbstraction::EventCount() {
  return StateAbstraction(
      "event-count", [](ProcessId, std::span<const Event> projection) {
        return std::to_string(projection.size());
      });
}

StateAbstraction StateAbstraction::LabelBag() {
  return StateAbstraction(
      "label-bag", [](ProcessId, std::span<const Event> projection) {
        std::map<std::string, int> bag;
        for (const Event& e : projection) ++bag[e.label];
        std::string key;
        for (const auto& [label, n] : bag)
          key += label + ":" + std::to_string(n) + ";";
        return key;
      });
}

StateAbstraction StateAbstraction::LastEvent() {
  return StateAbstraction(
      "last-event", [](ProcessId, std::span<const Event> projection) {
        return projection.empty() ? std::string("(none)")
                                  : projection.back().ToString();
      });
}

StateView::StateView(const ComputationSpace& space,
                     StateAbstraction abstraction)
    : space_(space), abstraction_(std::move(abstraction)) {
  const int np = space.num_processes();
  classes_.assign(space.size() * np, 0);
  buckets_.assign(np, {});
  for (ProcessId p = 0; p < np; ++p) {
    std::unordered_map<std::string, std::uint32_t> key_to_class;
    for (std::size_t id = 0; id < space.size(); ++id) {
      const auto projection = space.At(id).Projection(p);
      const std::string key = abstraction_.StateOf(p, projection);
      auto [it, inserted] = key_to_class.emplace(
          key, static_cast<std::uint32_t>(buckets_[p].size()));
      if (inserted) buckets_[p].emplace_back();
      classes_[id * np + p] = it->second;
      buckets_[p][it->second].push_back(static_cast<std::uint32_t>(id));
    }
  }
}

bool StateView::StateIsomorphic(std::size_t a, std::size_t b,
                                ProcessSet set) const {
  bool ok = true;
  set.ForEach([&](ProcessId p) {
    if (ok && StateClass(a, p) != StateClass(b, p)) ok = false;
  });
  return ok;
}

void StateView::ForEachStateIsomorphic(
    std::size_t id, ProcessSet set,
    const std::function<void(std::size_t)>& fn) const {
  if (set.IsEmpty()) {
    for (std::size_t y = 0; y < space_.size(); ++y) fn(y);
    return;
  }
  // Scan the smallest bucket, verify the rest by class ids.
  ProcessId best = set.First();
  std::size_t best_size = SIZE_MAX;
  set.ForEach([&](ProcessId p) {
    const auto size = buckets_[p][StateClass(id, p)].size();
    if (size < best_size) {
      best_size = size;
      best = p;
    }
  });
  for (std::uint32_t y : buckets_[best][StateClass(id, best)])
    if (StateIsomorphic(id, y, set)) fn(y);
}

bool StateView::IsLossless() const {
  for (ProcessId p = 0; p < space_.num_processes(); ++p)
    for (std::size_t a = 0; a < space_.size(); ++a)
      for (std::uint32_t b : buckets_[p][StateClass(a, p)])
        if (space_.ProjectionClass(a, p) != space_.ProjectionClass(b, p))
          return false;
  return true;
}

StateKnowledgeEvaluator::StateKnowledgeEvaluator(const StateView& view)
    : view_(view) {}

bool StateKnowledgeEvaluator::Holds(const FormulaPtr& f, std::size_t id) {
  if (!f) throw ModelError("StateKnowledgeEvaluator::Holds: null formula");
  retained_.push_back(f);
  return Eval(f.get(), id);
}

bool StateKnowledgeEvaluator::Knows(ProcessSet p, const Predicate& b,
                                    std::size_t id) {
  return Holds(Formula::Knows(p, Formula::Atom(b)), id);
}

bool StateKnowledgeEvaluator::IsLocalTo(const Predicate& b, ProcessSet p) {
  auto sure = Formula::Sure(p, Formula::Atom(b));
  for (std::size_t id = 0; id < view_.space().size(); ++id)
    if (!Holds(sure, id)) return false;
  return true;
}

bool StateKnowledgeEvaluator::Eval(const Formula* f, std::size_t id) {
  auto& slot = cache_[f];
  if (slot.empty()) slot.assign(view_.space().size(), 0);
  if (slot[id] != 0) return slot[id] == 2;

  bool result = false;
  switch (f->kind()) {
    case FormulaKind::kAtom:
      result = f->atom().Eval(view_.space().At(id));
      break;
    case FormulaKind::kNot:
      result = !Eval(f->left().get(), id);
      break;
    case FormulaKind::kAnd:
      result = Eval(f->left().get(), id) && Eval(f->right().get(), id);
      break;
    case FormulaKind::kOr:
      result = Eval(f->left().get(), id) || Eval(f->right().get(), id);
      break;
    case FormulaKind::kImplies:
      result = !Eval(f->left().get(), id) || Eval(f->right().get(), id);
      break;
    case FormulaKind::kKnows: {
      result = true;
      view_.ForEachStateIsomorphic(id, f->group(), [&](std::size_t y) {
        if (result && !Eval(f->left().get(), y)) result = false;
      });
      break;
    }
    case FormulaKind::kSure: {
      bool all_true = true, all_false = true;
      view_.ForEachStateIsomorphic(id, f->group(), [&](std::size_t y) {
        if (!all_true && !all_false) return;
        if (Eval(f->left().get(), y))
          all_false = false;
        else
          all_true = false;
      });
      result = all_true || all_false;
      break;
    }
    case FormulaKind::kEveryone: {
      result = true;
      f->group().ForEach([&](ProcessId p) {
        if (!result) return;
        view_.ForEachStateIsomorphic(
            id, ProcessSet::Of(p), [&](std::size_t y) {
              if (result && !Eval(f->left().get(), y)) result = false;
            });
      });
      break;
    }
    case FormulaKind::kPossible: {
      result = false;
      view_.ForEachStateIsomorphic(id, f->group(), [&](std::size_t y) {
        if (!result && Eval(f->left().get(), y)) result = true;
      });
      break;
    }
    case FormulaKind::kCommon:
      throw ModelError(
          "StateKnowledgeEvaluator: CK unsupported; use EveryoneIterated");
  }
  slot[id] = result ? 2 : 1;
  return result;
}

}  // namespace hpl
