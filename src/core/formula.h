// Epistemic formulas over system computations.
//
// Grammar (paper Section 4):
//   f ::= atom b                 (a [D]-invariant predicate)
//       | !f | f && f | f || f | f => f
//       | K{P} f                 ("P knows f")
//       | Sure{P} f              (K{P} f || K{P} !f)
//       | CK{G} f                (common knowledge: greatest fixpoint)
//
// Formulas are immutable DAGs of shared nodes; evaluation is performed by
// knowledge.h's KnowledgeEvaluator against a ComputationSpace, memoized per
// (node, computation-class).
//
// A small text syntax is provided for tests and tooling, e.g.
//   "K{0} (b && !K{1,2} c)"  — K{...} takes a comma-separated process list.
#ifndef HPL_CORE_FORMULA_H_
#define HPL_CORE_FORMULA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/predicate.h"
#include "core/types.h"

namespace hpl {

enum class FormulaKind : std::uint8_t {
  kAtom,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kKnows,     // K{P}: distributed knowledge of the set P ("P knows")
  kSure,      // Sure{P}
  kCommon,    // CK{G}: greatest-fixpoint common knowledge
  kEveryone,  // E{G}: every process in G individually knows
  kPossible,  // M{P}: P considers possible == !K{P}!f
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

class Formula {
 public:
  FormulaKind kind() const noexcept { return kind_; }
  const Predicate& atom() const { return atom_; }
  const FormulaPtr& left() const { return left_; }
  const FormulaPtr& right() const { return right_; }
  ProcessSet group() const noexcept { return group_; }

  std::string ToString() const;

  // Depth of K/Sure/CK nesting (0 for purely propositional formulas).
  int ModalDepth() const;

  // --- Constructors -------------------------------------------------------
  static FormulaPtr Atom(Predicate b);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Implies(FormulaPtr a, FormulaPtr b);
  // P knows f.
  static FormulaPtr Knows(ProcessSet p, FormulaPtr f);
  static FormulaPtr Knows(ProcessId p, FormulaPtr f);
  // P sure f == (P knows f) || (P knows !f).
  static FormulaPtr Sure(ProcessSet p, FormulaPtr f);
  // Common knowledge among G (greatest fixpoint, paper Section 4.2).
  static FormulaPtr Common(ProcessSet g, FormulaPtr f);

  // "Everyone in G knows f": the conjunction of K{p} f over p in G.  Note
  // the contrast with Knows(G, f), which is *distributed* knowledge (the
  // joint view); E{G} f implies nothing about pooled information.
  static FormulaPtr Everyone(ProcessSet g, FormulaPtr f);

  // E^k: Everyone nested k times — the finite approximations whose limit
  // is common knowledge (Halpern & Moses [3], cited in Section 4.2).
  static FormulaPtr EveryoneIterated(ProcessSet g, int k, FormulaPtr f);

  // "P considers f possible": !K{P} !f.
  static FormulaPtr Possible(ProcessSet p, FormulaPtr f);

  // Nested knowledge K{P1} K{P2} ... K{Pn} f — the shape of Theorems 4-6.
  static FormulaPtr KnowsChain(const std::vector<ProcessSet>& chain,
                               FormulaPtr f);

  // Parses the text syntax; atoms are resolved by name through `atoms`.
  // Throws ModelError on syntax errors or unknown atom names.
  static FormulaPtr Parse(const std::string& text,
                          const std::vector<Predicate>& atoms);

 private:
  friend struct FormulaBuilder;
  Formula() = default;

  FormulaKind kind_ = FormulaKind::kAtom;
  Predicate atom_;
  FormulaPtr left_;
  FormulaPtr right_;
  ProcessSet group_;
};

// Structural interner (hash-consing): maps every formula to a canonical
// node, so structurally equal formulas built by different code paths — or
// parsed from different request strings — share one node pointer.  Pointer-
// keyed consumers (KnowledgeEvaluator's dense memo rows, compiled kernel
// programs) then see one node, one memo row, and one compiled program
// instead of re-deriving state per parse.
//
// Identity contract: atoms are keyed by predicate *name* (the same contract
// the text parser and serve protocol already rely on) — two predicates with
// the same name are treated as the same atom, so names must identify
// predicate semantics within one interner.  Interior nodes are keyed by
// (kind, group, canonical child pointers), which makes a key probe O(1) per
// node instead of O(formula text).
//
// The interner retains every canonical node and every node it was shown
// (preventing pointer reuse from aliasing the cache), so canonical pointers
// stay valid for the interner's lifetime.  Not thread-safe.
class FormulaInterner {
 public:
  // Returns the canonical node structurally equal to `f`, interning it (and
  // its whole subtree) on first sight.  Idempotent: canonical nodes intern
  // to themselves.  Throws ModelError on null.
  FormulaPtr Intern(const FormulaPtr& f);

  // Number of distinct canonical nodes (subformulas included).
  std::size_t size() const noexcept { return by_key_.size(); }

  std::size_t MemoryBytes() const;

 private:
  struct Seen {
    FormulaPtr source;     // keeps the key pointer alive
    FormulaPtr canonical;
  };
  FormulaPtr InternNode(const FormulaPtr& f);

  std::unordered_map<std::string, FormulaPtr> by_key_;
  std::unordered_map<const Formula*, Seen> by_node_;  // pointer fast path
};

}  // namespace hpl

#endif  // HPL_CORE_FORMULA_H_
