// ComputationSpace: the (finite) set of all computations of a System,
// organized for knowledge evaluation.
//
// "P knows b at x" quantifies over every system computation y with x [P] y
// (paper Section 4.1), so deciding knowledge requires the whole computation
// set.  Enumerate() explores the system exhaustively from the empty
// computation.  Because every predicate must be [D]-invariant (the paper
// assumes "x [D] y implies b at x = b at y"), the space stores exactly one
// canonical representative per [D]-equivalence class; this both compresses
// the space and enforces the invariance assumption by construction.
//
// The store is columnar and segmented.  Events are interned into a shared
// pool (a system's event alphabet is bounded by its protocol, not by its
// class count), and a class is 12 bytes: its BFS parent, the pool id of the
// one event that extends the parent into it, and the splice position where
// the canonical scheduler emits that event — canonical sequences are never
// stored, they are materialized on demand by replaying the splice chain
// from the root (At(), therefore, returns by value).  Successor lists and
// per-process buckets are CSR-flattened (offset array + flat uint32_t
// payload), and the canonical-form index is a sorted (hash, id) column.
//
// The per-class columns (links, projections, canonical index, successor
// CSR) live in fixed-size segments (segment_store.h) rather than one flat
// vector each: the tail segment of each column is append-only and
// resident, sealed segments are immutable and individually spillable to
// FNV-checksummed files, faulted back via mmap on demand.  With a
// residency budget set (EnumerationLimits::segments), BFS enumeration
// spills cold segments behind the frontier and whole-space sweeps stream
// segment-at-a-time — the out-of-core mode that takes the store past RAM
// (the 100M-class regime).  Without a budget (the default) every segment
// stays resident and behavior matches the flat store exactly.  Because the
// canonical index is kept globally sorted by hash, its segment boundaries
// are contiguous hash ranges — the store is effectively sharded by
// canonical-hash prefix.  The event pool and the bucket CSR columns stay
// resident: the pool is bounded by the protocol alphabet, and bucket
// payloads are the one column sweeps genuinely random-access (their
// footprint is the documented floor of the out-of-core mode).
//
// Reads go through view/cursor types instead of raw spans: Bucket()
// returns a BucketView, SuccessorsOf() a SuccessorRange, and Classes() a
// SegmentCursor — each pins the segments it touches for its lifetime, so a
// cooperative residency trim (TrimResidency) can never invalidate an
// in-flight access.  Deprecated span shims (BucketSpan) remain for
// out-of-tree code and fail loudly on an out-of-core store.
//
// Per-process buckets group computations with equal projections, so the
// [p]-equivalence classes are materialized and "for all y: x [P] y" becomes
// an intersection of bucket scans instead of a scan of the whole space.
// Projection classes are assigned *during* enumeration: a one-event
// extension leaves every projection unchanged except on the extending
// event's process, where it appends that event — so a child's [p]-class is
// inherited from its parent for p != e.process and looked up (or minted) by
// the key (parent's [p]-class, event id) for p == e.process.  Classifying a
// class costs O(1) amortized instead of hashing its projections.
//
// On top of the singleton [p]-classes sits the group ([G]-class) layer: for
// a process set G, the [G]-equivalence x [G] y (equal projections on every
// member) is the common refinement of the member [p]-partitions, and its
// classes are materialized as a GroupIndex — one dense class id per
// [D]-class plus a CSR bucket column, exactly the singleton layout.  A
// child whose extending event lies outside G inherits its parent's
// [G]-class; otherwise the class is looked up (or minted) by the child's
// tuple of member [p]-class ids.  (Unlike the singleton case, the key
// (parent [G]-class, event) would be UNSOUND for |G| >= 2: the same
// [G]-tuple is reachable through parents that extend different member
// processes, which would mint duplicate ids — the tuple key is canonical.)
// Indexes are built incrementally during the BFS merge for the groups in
// EnumerationLimits::groups, and lazily afterwards by replaying the class
// links in id order through EnsureGroupIndex's mask-keyed cache; both scans
// visit classes in the same order, so they mint byte-identical tables.
//
// Enumeration is level-synchronous: the BFS frontier expands one depth
// level at a time, extensions dedup through per-shard hash maps over the
// level's interned-id sequences, and shards merge in the sequential
// discovery order — so class ids, successor lists, projection classes, and
// therefore every knowledge result are byte-identical for every
// `num_threads` value (`num_threads = 1` runs the same phases inline), and
// independent of the segment size and residency budget (differential-
// tested in tests/core/space_segmented_test.cc).  Expansion calls
// `System::EnabledEvents` concurrently from multiple threads, which is
// safe for every system in the repo because EnabledEvents is a pure
// function of the computation; custom systems must preserve that (no
// mutable state in a const EnabledEvents).
#ifndef HPL_CORE_SPACE_H_
#define HPL_CORE_SPACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/computation.h"
#include "core/segment_store.h"
#include "core/system.h"
#include "core/types.h"

namespace hpl {

namespace sim {
class Trace;  // sim/trace.h: recorded event stream (SpaceBuilder::Ingest)
}  // namespace sim

namespace internal {
class WorkerPool;
struct SpaceSnapshotIO;  // serialization.cc: binary snapshot save/load
}  // namespace internal

class SpaceBuilder;

struct EnumerationLimits {
  // Hard cap on events per computation.  Enumeration throws if any branch
  // is still extendable at this depth, unless `allow_truncation` is set —
  // knowledge results on a truncated space are approximations and
  // Enumerate() records the truncation in `ComputationSpace::truncated()`.
  // Must fit the columnar store's 16-bit splice links: at most 65535.
  int max_depth = 64;
  // Hard cap on the number of [D]-classes (guards against blow-up).
  std::size_t max_classes = 20'000'000;
  bool allow_truncation = false;
  // When true (default), computations are deduplicated by [D]-canonical
  // form — sound for the paper's asynchronous model, whose computation
  // sets are closed under valid permutations.  Timed/synchronous systems
  // (e.g. protocols/lockstep.h) are NOT permutation closed: they must set
  // this to false so the space keeps their literal interleavings.
  bool canonicalize = true;
  // Worker threads for enumeration.  0 = std::thread::hardware_concurrency
  // (at least 1); 1 = the same level phases run inline.  Any value produces
  // byte-identical class ids and derived indexes (see the header comment).
  int num_threads = 0;
  // Process groups whose [G]-class indexes are materialized incrementally
  // during the BFS merge (one inherit-or-mint step per discovered class)
  // instead of by a whole-space replay on first use.  Duplicates (by mask)
  // are built once; empty sets are rejected.  The resulting tables are
  // byte-identical to the lazy EnsureGroupIndex path.
  std::vector<ProcessSet> groups = {};
  // Segment size / residency budget / spill directory of the columnar
  // store (segment_store.h).  The default keeps everything resident; a
  // non-zero residency budget turns on out-of-core enumeration: cold
  // segments spill behind the BFS frontier.  Class ids and every derived
  // column are byte-identical whatever these values.
  SegmentOptions segments = {};
};

class ComputationSpace {
 public:
  // Exhaustively enumerates the system's computations.  A thin wrapper over
  // SpaceBuilder (Build + Take): the result is sealed — keep the builder
  // instead when the space should be deepened or ingested into later.
  static ComputationSpace Enumerate(const System& system,
                                    const EnumerationLimits& limits = {});

  int num_processes() const noexcept { return num_processes_; }
  ProcessSet AllProcesses() const { return ProcessSet::All(num_processes_); }
  std::size_t size() const noexcept { return links_.size(); }
  bool truncated() const noexcept { return truncated_; }
  const std::string& system_name() const noexcept { return system_name_; }

  // Depth the level-synchronous BFS reached: the depth cap for truncated
  // spaces, the length of the longest class otherwise.  Classes spliced in
  // by SpaceBuilder::Ingest may be longer — the BFS is exhaustive only up
  // to this depth.
  int built_depth() const noexcept { return built_depth_; }

  // Canonical representative of class `id`, materialized from the columnar
  // store by replaying the class's splice chain (O(length^2) uint32 moves
  // plus one Event copy per event; lengths are <= max_depth).  Returns by
  // value — bind with `const Computation& x = space.At(id)` when a
  // reference is convenient (lifetime extension applies).
  Computation At(std::size_t id) const;

  // Event count of class `id` without materializing it (O(1); faults the
  // class's links segment in if it is spilled).
  std::size_t LengthOf(std::size_t id) const { return links_[id].length; }

  // Index of the [D]-class of `c`, if `c` (or a permutation of it) is a
  // computation of the system.
  std::optional<std::size_t> IndexOf(const Computation& c) const;

  // As IndexOf but throws with context when absent.
  std::size_t RequireIndex(const Computation& c) const;

  // Id of the [p]-equivalence class of computation `id` (dense ints).
  std::uint32_t ProjectionClass(std::size_t id, ProcessId p) const {
    return proj_class_.Row(id)[static_cast<std::size_t>(p)];
  }

  // Number of [p]-equivalence classes (valid class ids are dense in
  // [0, NumProjectionClasses(p))).
  std::size_t NumProjectionClasses(ProcessId p) const {
    return bucket_offsets_.at(static_cast<std::size_t>(p)).size() - 1;
  }

  // Span-like view of one [p]-bucket, pinning whatever segment backs it
  // for the view's lifetime (today bucket payloads are always resident, so
  // the pin is empty — the type exists so the contract survives buckets
  // moving out of core).  Implicitly converts to std::span for code that
  // only reads.  Move-only: the pin is owned.
  class BucketView {
   public:
    using value_type = std::uint32_t;
    BucketView() = default;
    BucketView(BucketView&&) noexcept = default;
    BucketView& operator=(BucketView&&) noexcept = default;

    const std::uint32_t* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }
    std::uint32_t operator[](std::size_t k) const { return data_[k]; }
    std::uint32_t front() const { return data_[0]; }
    std::uint32_t back() const { return data_[size_ - 1]; }
    const std::uint32_t* begin() const noexcept { return data_; }
    const std::uint32_t* end() const noexcept { return data_ + size_; }
    std::span<const std::uint32_t> span() const noexcept {
      return std::span<const std::uint32_t>(data_, size_);
    }
    operator std::span<const std::uint32_t>() const noexcept {  // NOLINT
      return span();
    }

   private:
    friend class ComputationSpace;
    BucketView(const std::uint32_t* data, std::size_t size,
               internal::SegmentPin pin)
        : data_(data), size_(size), pin_(std::move(pin)) {}
    const std::uint32_t* data_ = nullptr;
    std::size_t size_ = 0;
    internal::SegmentPin pin_;
  };

  // All computations y with At(id) [p] y (including id itself), ascending —
  // one contiguous slice of the process's CSR bucket column.
  BucketView Bucket(ProcessId p, std::uint32_t cls) const {
    const auto& offsets = bucket_offsets_.at(static_cast<std::size_t>(p));
    const auto& ids = bucket_ids_[static_cast<std::size_t>(p)];
    return BucketView(ids.data() + offsets.at(cls),
                      offsets.at(cls + 1) - offsets[cls],
                      internal::SegmentPin());
  }

  // DEPRECATED raw-span shim for out-of-tree callers of the pre-segment
  // API.  Only valid on a fully resident store: throws ModelError when the
  // space runs out-of-core (a raw span cannot pin its segment, so handing
  // one out would dangle across a residency trim).  In-repo code uses
  // Bucket()/BucketView.
  [[deprecated("use Bucket(): BucketView pins its segment")]]
  std::span<const std::uint32_t> BucketSpan(ProcessId p,
                                            std::uint32_t cls) const {
    RequireFullyResident("ComputationSpace::BucketSpan");
    return Bucket(p, cls).span();
  }

  // One materialized [G]-class partition: the common refinement of the
  // member [p]-partitions, stored like the singleton layer — a dense class
  // id per [D]-class and a CSR bucket column.  Instances are owned by the
  // space (built by Enumerate for EnumerationLimits::groups, or lazily by
  // EnsureGroupIndex) and their addresses are stable for the space's
  // lifetime, so hot sweeps hold the reference and never touch the cache.
  // Group tables are always resident (they are derived, rebuildable
  // indexes, not part of the segmented class store).
  class GroupIndex {
   public:
    std::uint64_t mask() const noexcept { return mask_; }
    std::size_t NumClasses() const noexcept { return offsets_.size() - 1; }
    std::uint32_t ClassOf(std::size_t id) const { return cls_[id]; }
    // All y with x [G] y for any x in [G]-class `cls` (ascending ids).
    std::span<const std::uint32_t> Bucket(std::uint32_t cls) const {
      return std::span<const std::uint32_t>(ids_.data() + offsets_[cls],
                                            offsets_[cls + 1] - offsets_[cls]);
    }
    // First (smallest) member of [G]-class `cls` — its representative.
    std::uint32_t Representative(std::uint32_t cls) const {
      return ids_[offsets_[cls]];
    }
    std::size_t MemoryBytes() const noexcept {
      return (cls_.capacity() + offsets_.capacity() + ids_.capacity()) *
             sizeof(std::uint32_t);
    }

   private:
    friend class ComputationSpace;
    friend class SpaceBuilder;
    friend struct internal::SpaceSnapshotIO;
    std::uint64_t mask_ = 0;
    std::vector<std::uint32_t> cls_;      // per [D]-class: its [G]-class
    std::vector<std::uint32_t> offsets_;  // CSR offsets (NumClasses() + 1)
    std::vector<std::uint32_t> ids_;      // CSR payload, ascending per bucket
  };

  // The [G]-class index for `g`, built on first use (a replay of the class
  // links in id order) and cached by process mask; `g` must be non-empty.
  // Thread-safe; the returned reference stays valid for the space's
  // lifetime.  |G| = 1 builds a real table whose classes coincide with the
  // singleton ProjectionClass/Bucket columns.
  const GroupIndex& EnsureGroupIndex(ProcessSet g) const;

  // True when the [G]-class index for `g` is already materialized (via
  // EnumerationLimits::groups or a previous EnsureGroupIndex).
  bool HasGroupIndex(ProcessSet g) const;

  // Convenience forwards to EnsureGroupIndex(g) — each call pays the cache
  // lookup; hold the GroupIndex reference on hot paths.
  std::uint32_t GroupClass(std::size_t id, ProcessSet g) const {
    return EnsureGroupIndex(g).ClassOf(id);
  }
  std::size_t NumGroupClasses(ProcessSet g) const {
    return EnsureGroupIndex(g).NumClasses();
  }
  std::span<const std::uint32_t> GroupBucket(ProcessSet g,
                                             std::uint32_t cls) const {
    return EnsureGroupIndex(g).Bucket(cls);
  }

  // Iterates ids of all y with At(id) [P] y.  P empty relates everything
  // (the paper: x [{}] y for all x, y).  A thin forward to
  // ForEachIsomorphicWhile, so `fn` is invoked directly — no std::function
  // on the sweep path.
  template <typename Fn>
  void ForEachIsomorphic(std::size_t id, ProcessSet set, Fn&& fn) const {
    ForEachIsomorphicWhile(id, set, [&fn](std::size_t y) {
      fn(y);
      return true;
    });
  }

  // As ForEachIsomorphic, but stops as soon as `fn` returns false.  The
  // canonical implementation of the [P]-relation sweep: scans the smallest
  // per-process bucket and verifies the other processes via class ids.
  template <typename Fn>
  void ForEachIsomorphicWhile(std::size_t id, ProcessSet set, Fn&& fn) const {
    if (set.IsEmpty()) {
      // x [{}] y holds for all computations.
      for (std::size_t y = 0; y < size(); ++y)
        if (!fn(y)) return;
      return;
    }
    ProcessId best = set.First();
    std::size_t best_size = SIZE_MAX;
    set.ForEach([&](ProcessId p) {
      const std::size_t bucket_size = BucketSize(p, ProjectionClass(id, p));
      if (bucket_size < best_size) {
        best_size = bucket_size;
        best = p;
      }
    });
    const BucketView bucket = Bucket(best, ProjectionClass(id, best));
    for (std::uint32_t y : bucket)
      if (Isomorphic(id, y, set) && !fn(y)) return;
  }

  // True iff At(a) [P] At(b) — O(|P|) via class ids.
  bool Isomorphic(std::size_t a, std::size_t b, ProcessSet set) const;

  // Decides the composed relation At(a) [P0 P1 ... Pn] At(b) by BFS through
  // the per-stage equivalence classes.
  bool ComposedIsomorphic(std::size_t a, std::size_t b,
                          const std::vector<ProcessSet>& stages) const;

  // Constructive witness: intermediate computations y1..y_{n-1} with
  // a [P0] y1 [P1] y2 ... [Pn] b (class ids, including both endpoints).
  // Empty when the relation does not hold.  This realizes the existential
  // in the paper's composed-isomorphism definition, and in Theorem 1.
  std::vector<std::size_t> ComposedPath(
      std::size_t a, std::size_t b,
      const std::vector<ProcessSet>& stages) const;

  // The ids of all z with At(a) [P0 ... Pn] z (BFS frontier after the last
  // stage).  Used to study Theorem 3's shrink/grow semantics.
  std::vector<std::size_t> ComposedReachable(
      std::size_t a, const std::vector<ProcessSet>& stages) const;

  // Classes whose representative extends At(id) by exactly one event
  // (successor classes), and the extending events.  Backed by the CSR
  // successor columns; iteration yields Successor values whose events are
  // copied out of the shared pool.  The range pins the successor-payload
  // segments it covers, so iteration is stable across a concurrent
  // residency trim.  Move-only: the pins are owned.
  struct Successor {
    std::size_t class_id;
    Event event;
  };
  class SuccessorRange {
   public:
    class Iterator {
     public:
      using value_type = Successor;
      using difference_type = std::ptrdiff_t;
      Iterator(const ComputationSpace* space, std::uint32_t i)
          : space_(space), i_(i) {}
      Successor operator*() const { return space_->SuccessorAt(i_); }
      Iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator==(const Iterator& o) const { return i_ == o.i_; }

     private:
      const ComputationSpace* space_;
      std::uint32_t i_;
    };

    SuccessorRange(SuccessorRange&&) noexcept = default;
    SuccessorRange& operator=(SuccessorRange&&) noexcept = default;

    std::size_t size() const noexcept { return end_ - begin_; }
    bool empty() const noexcept { return begin_ == end_; }
    Successor operator[](std::size_t k) const {
      return space_->SuccessorAt(begin_ + static_cast<std::uint32_t>(k));
    }
    Iterator begin() const { return Iterator(space_, begin_); }
    Iterator end() const { return Iterator(space_, end_); }

   private:
    friend class ComputationSpace;
    SuccessorRange(const ComputationSpace* space, std::uint32_t begin,
                   std::uint32_t end)
        : space_(space), begin_(begin), end_(end) {}
    const ComputationSpace* space_;
    std::uint32_t begin_;
    std::uint32_t end_;
    // Pins on the first and last successor-payload segment the range
    // touches, per column (ranges are per-class successor lists — far
    // smaller than a segment, so two pins per column always suffice).
    internal::SegmentPin class_pin_[2];
    internal::SegmentPin event_pin_[2];
  };
  SuccessorRange SuccessorsOf(std::size_t id) const;

  // Streaming cursor over the class-id range, one segment at a time: the
  // current segment's links and projection rows are pinned (faulted in,
  // eviction-proof) while [begin, end) is processed.  With `trim_behind`
  // set, advancing past a segment trims residency back to the budget —
  // only legal on sequential sweeps (see the segment_store.h concurrency
  // contract); parallel sweeps run their own cursor per shard without
  // trimming and trim at the next quiescent point.
  //
  //   for (auto cur = space.Classes(); cur.Valid(); cur.Next())
  //     for (std::size_t id = cur.begin(); id < cur.end(); ++id) ...
  class SegmentCursor {
   public:
    SegmentCursor(SegmentCursor&&) noexcept = default;
    SegmentCursor& operator=(SegmentCursor&&) noexcept = default;

    bool Valid() const noexcept { return begin_ < limit_; }
    std::size_t segment() const noexcept { return seg_; }
    std::size_t begin() const noexcept { return begin_; }
    std::size_t end() const noexcept { return end_; }
    void Next();

   private:
    friend class ComputationSpace;
    SegmentCursor(const ComputationSpace* space, std::size_t first_id,
                  std::size_t limit, bool trim_behind);
    void PinCurrent();
    const ComputationSpace* space_;
    std::size_t seg_ = 0;
    std::size_t begin_ = 0;
    std::size_t end_ = 0;
    std::size_t limit_ = 0;
    bool trim_ = false;
    internal::SegmentPin links_pin_;
    internal::SegmentPin proj_pin_;
  };
  // Cursor over ids [first_id, limit) — limit = SIZE_MAX means size().
  SegmentCursor Classes(std::size_t first_id = 0,
                        std::size_t limit = SIZE_MAX,
                        bool trim_behind = false) const;

  // Ids of all computations in increasing length order (stable: equal
  // lengths keep ascending ids).  BFS discovers classes level by level, so
  // for enumerated spaces this is simply 0..size()-1; SpaceBuilder::Ingest
  // can splice in classes out of length order, which this re-sorts.
  std::vector<std::size_t> IdsByLength() const;

  // --- residency control / observability -----------------------------------

  // The segment configuration this space was built (or loaded) with.
  const SegmentOptions& segment_options() const noexcept {
    return store_->options();
  }
  // True when a residency budget is set (segments may be spilled).
  bool out_of_core() const noexcept { return store_->out_of_core(); }
  // Spills LRU sealed unpinned segments until the store fits its budget.
  // Cooperative: only call from quiescent points (no unpinned concurrent
  // readers).  Returns segments spilled.  No-op without a budget.
  std::size_t TrimResidency() const { return store_->EnforceBudget(); }
  // Faults every spilled segment back in (heap-backed): required before
  // handing the space to code that still assumes full residency.
  void MakeFullyResident() const { store_->MakeAllResident(); }
  // Residency / spill counters of the segment store.
  internal::SegmentedSpaceStore::Stats SegmentStats() const {
    return store_->GetStats();
  }
  // Per-segment residency rows (serve {"op":"residency"}).
  std::vector<internal::SegmentedSpaceStore::SegmentInfo> SegmentResidency()
      const {
    return store_->Residency();
  }

  // Exact memory footprint of the columnar store, in bytes, split by
  // residency — `bytes_total` is the logical column payload wherever it
  // lives; `bytes_resident` is what actually occupies heap (counts toward
  // RSS), `bytes_mapped` is mmapped segment payload (file-backed,
  // reclaimable), `bytes_spilled` is on disk only.  Also reports what the
  // seed's array-of-structs layout would need for the same space (one
  // owned event vector per class, per-class successor vectors,
  // vector-of-vector buckets, hash-map canonical index) — the before/after
  // line benchmarks report.
  struct MemoryStats {
    std::size_t classes = 0;
    std::size_t bytes_event_pool = 0;    // interned events incl. label heap
    std::size_t bytes_class_links = 0;   // (parent, event, pos, length)
    std::size_t bytes_canon_index = 0;   // sorted (hash, id) columns
    std::size_t bytes_projection = 0;    // proj_class_
    std::size_t bytes_buckets = 0;       // CSR offsets + payload
    std::size_t bytes_successors = 0;    // CSR offsets + payload
    std::size_t bytes_group_index = 0;   // cached [G]-class indexes
    std::size_t bytes_total = 0;         // logical sum of the above
    // Residency split (segmented columns by state + always-resident
    // columns under bytes_resident).
    std::size_t bytes_resident = 0;
    std::size_t bytes_mapped = 0;
    std::size_t bytes_spilled = 0;
    std::size_t segments = 0;
    std::size_t spill_faults = 0;
    std::size_t spill_writes = 0;
    std::size_t bytes_aos_equivalent = 0;
    double BytesPerClass() const {
      return classes == 0 ? 0.0
                          : static_cast<double>(bytes_total) /
                                static_cast<double>(classes);
    }
  };
  MemoryStats MemoryUsage() const;

 private:
  // Snapshot save/load (serialization.cc) reads and rebuilds the columnar
  // members directly, and SpaceBuilder grows the columns in place; they are
  // the only code outside this class that may.
  friend struct internal::SpaceSnapshotIO;
  friend class SpaceBuilder;

  ComputationSpace() = default;

  // One class of the columnar store: the BFS parent, the extending event
  // (pool id), the canonical splice position of that event in the parent's
  // sequence, and the sequence length.  The root (class 0) has length 0.
  struct ClassLink {
    std::uint32_t parent = 0;
    std::uint32_t event = 0;
    std::uint16_t pos = 0;
    std::uint16_t length = 0;
  };

  // Configures the segment store and binds every column to it.  Must run
  // after num_processes_ is set and before any column grows.
  void InitColumns(const SegmentOptions& options);

  // Throws when the store runs out-of-core — the deprecated raw-span shims
  // cannot pin, so they refuse rather than dangle.
  void RequireFullyResident(const char* what) const;

  // Bucket size without materializing a view (offset subtraction).
  std::size_t BucketSize(ProcessId p, std::uint32_t cls) const {
    const auto& offsets = bucket_offsets_[static_cast<std::size_t>(p)];
    return offsets[cls + 1] - offsets[cls];
  }

  // Builds the per-process CSR buckets from proj_class_ by counting sort
  // (phase 2 of construction); one independent task per process when a pool
  // is given.  Streams the projection column segment-at-a-time under pins,
  // trimming residency as it goes when a budget is set.  Also finishes the
  // CSR columns of any group indexes whose cls_ columns are filled and
  // offsets zeroed (SpaceBuilder::Finalize).
  static void BuildBuckets(ComputationSpace& space, internal::WorkerPool* pool);

  // Fills `index` (mask already set) by replaying the class links in id
  // order — the same inherit-or-mint scan the incremental path runs during
  // the BFS merge, so both produce byte-identical tables.
  void BuildGroupIndex(GroupIndex& index) const;

  // The cls_/offsets_ half of BuildGroupIndex without the bucket sort:
  // replays the links into a fresh cls_ column and zeroes offsets_ so
  // BuildBuckets (or BuildGroupBuckets) can fill the CSR.  SpaceBuilder
  // re-runs this over every cached index after Deepen/Ingest — the replay
  // visits ids in the same order as the original build, so the extended
  // tables stay byte-identical to a from-scratch enumeration.
  void ReplayGroupClasses(GroupIndex& index) const;

  // Counting sort of the CSR bucket column of a finished `cls_` column
  // (offsets_ pre-assigned to NumClasses() + 1 zeros by the caller).
  static void BuildGroupBuckets(GroupIndex& index);

  // Interned-event-id form of the canonical sequence of class `id`,
  // materialized by replaying the splice chain from the root.
  std::vector<std::uint32_t> CanonicalIdsOf(std::size_t id) const;

  Successor SuccessorAt(std::uint32_t i) const {
    return Successor{succ_class_[i], event_pool_[succ_event_[i]]};
  }

  int num_processes_ = 0;
  bool truncated_ = false;
  bool canonicalize_ = true;
  int built_depth_ = 0;
  std::string system_name_;

  // Segment directory shared by the columns below.  unique_ptr keeps the
  // store's address stable across space moves (columns hold the raw
  // pointer).
  std::unique_ptr<internal::SegmentedSpaceStore> store_ =
      std::make_unique<internal::SegmentedSpaceStore>();

  // Columnar class store (see header comment).  The event pool and the
  // bucket CSR stay resident by design; everything else is segmented.
  std::vector<Event> event_pool_;
  internal::SegColumn<ClassLink> links_;
  // Canonical-form index: hashes sorted ascending, ids carried alongside —
  // segment boundaries are contiguous hash ranges (hash-prefix shards).
  internal::SegColumn<std::size_t> canon_hash_;
  internal::SegColumn<std::uint32_t> canon_id_;
  // Projection rows: num_processes_ elements per class row.
  internal::SegColumn<std::uint32_t> proj_class_;
  // CSR buckets: bucket_ids_[p][bucket_offsets_[p][cls] ..
  // bucket_offsets_[p][cls+1]) = ids of computations in [p]-class cls.
  std::vector<std::vector<std::uint32_t>> bucket_offsets_;
  std::vector<std::vector<std::uint32_t>> bucket_ids_;
  // CSR successors: parallel (class, event-pool-id) columns.
  internal::SegColumn<std::uint32_t> succ_offsets_;  // size() + 1
  internal::SegColumn<std::uint32_t> succ_class_;
  internal::SegColumn<std::uint32_t> succ_event_;
  // Group-partition cache, keyed by process mask.  unique_ptr values keep
  // GroupIndex addresses stable across rehashes; the mutex guards only the
  // map (indexes are immutable once published).  Held by unique_ptr so the
  // space stays movable.
  mutable std::unique_ptr<std::mutex> group_mutex_ =
      std::make_unique<std::mutex>();
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<GroupIndex>>
      group_index_;
};

// Resumable construction surface over ComputationSpace: owns the space plus
// the BFS frontier (the per-level pending interned-id sequences and the
// incremental interner/projection/group-minter state the one-shot BFS used
// to discard), so depth becomes a dial instead of a rebuild:
//
//   SpaceBuilder builder;
//   builder.Build(system, {.max_depth = 4, .allow_truncation = true});
//   ... query builder.space() ...
//   builder.Deepen(1);   // resume the BFS exactly where Build stopped
//
// Deepen is byte-identical to a fresh enumeration at the target depth —
// same class ids, canonical hashes, CSR columns, and group tables, at any
// thread count — because the resumed BFS replays the very phases a fresh
// run would have executed past the old cap, and Finalize re-derives every
// sorted/derived column in a way that is order-equivalent to the
// from-scratch construction (differential-tested in
// tests/core/space_builder_test.cc).
//
// Ingest splices an observed event stream (a sim::Trace, or a raw event
// span) into the space online: each prefix of the stream is located (or
// minted, with its splice link, projection row, canonical-index entry, and
// successor edge) without touching classes the stream cannot reach.  A
// builder that minted classes through Ingest can keep ingesting but no
// longer Deepen — ingested classes break the level-ordered frontier.
// Ingest mutates columns in place (middle insertions), so it faults the
// whole store resident first; out-of-core budgets re-apply at the next
// trim.
//
// The space lives behind a stable address: builder.space() remains valid
// across Deepen/Ingest calls, so long-lived readers (e.g. a
// KnowledgeEvaluator, which re-syncs via Refresh()) can hold the reference.
// The System passed to Build is borrowed and must outlive the builder (or
// at least every later Deepen).  Builders are single-threaded objects: no
// concurrent calls, and no space reads while a call is in flight.  A
// builder whose Build/Deepen threw is in an unspecified state; rebuild it.
//
// Snapshots: serialization.h saves a builder with its frontier
// (hpl-space-v2/v3) so a served space can be loaded and then deepened;
// loading a frontier-less snapshot (v1 files, or a space saved without its
// builder) yields a sealed builder — Ingest still works, Deepen throws.
class SpaceBuilder {
 public:
  SpaceBuilder();
  ~SpaceBuilder();
  SpaceBuilder(SpaceBuilder&&) noexcept;
  SpaceBuilder& operator=(SpaceBuilder&&) noexcept;

  // Enumerates from scratch up to limits.max_depth, retaining the frontier
  // (any previous space owned by this builder is discarded).  Equivalent to
  // Enumerate(system, limits) plus the ability to continue.
  void Build(const System& system, const EnumerationLimits& limits = {});

  // Resumes the BFS for `extra_levels` more levels from the retained
  // frontier.  Returns the number of classes minted (0 when the space is
  // already complete).  Throws on a sealed builder (no frontier), after a
  // minting Ingest, or past the 16-bit depth cap.  Truncation follows the
  // limits passed to Build: if the space is still extendable at the new
  // target and allow_truncation was not set, Deepen throws like Build.
  std::size_t Deepen(int extra_levels = 1);

  // Splices the event stream into the space: walks the stream's prefixes,
  // locating each one's [D]-class and minting the missing ones (classes
  // reachable from the observed events only — never a whole level).
  // Returns the number of classes minted; re-ingesting a seen stream is a
  // dedup no-op returning 0.  Throws (before any mutation of the failing
  // prefix) if an event is not a legal extension of the observed prefix.
  std::size_t Ingest(std::span<const Event> events);

  // As above, over the first `prefix_len` (default: all) recorded entries
  // of a simulator trace.
  std::size_t Ingest(const sim::Trace& trace);
  std::size_t Ingest(const sim::Trace& trace, std::size_t prefix_len);

  // The space under construction.  The reference (and the object's address)
  // stays stable across Deepen/Ingest; it is invalidated by Build and Take.
  const ComputationSpace& space() const;
  ComputationSpace& space();
  bool has_space() const noexcept { return space_ != nullptr; }

  // Depth the BFS has reached so far (space().built_depth()).
  int built_depth() const;
  // True once the BFS exhausted the system below the depth cap: Deepen
  // becomes a 0-class no-op.
  bool complete() const noexcept { return complete_; }
  // True when the builder carries no frontier (loaded from a v1 snapshot or
  // one saved without builder state): Deepen throws, Ingest still works.
  bool sealed() const noexcept { return sealed_; }
  // True when Deepen can still mint classes.
  bool CanDeepen() const noexcept {
    return space_ != nullptr && !sealed_ && !ingested_ && !complete_;
  }

  // Moves the finished space out, sealing this builder (it returns to the
  // empty state; Build starts over).
  ComputationSpace Take() &&;

 private:
  // Snapshot save/load (serialization.cc) persists the frontier fields.
  friend struct internal::SpaceSnapshotIO;

  // Transient BFS/interner state (defined in space.cc: it holds the
  // file-local group-minter machinery).
  struct State;

  // How the held space relates to its (absent or retained) frontier; the
  // hpl-space-v2 snapshot stores this byte verbatim.
  enum class FrontierState : std::uint8_t {
    kSealed = 0,    // no frontier persisted: query-only
    kComplete = 1,  // BFS drained: nothing left to deepen into
    kCapped = 2,    // frontier parked at built_depth: Deepen resumes it
    kIngested = 3,  // Ingest broke level order: Ingest only, no Deepen
  };

  // Wraps an existing space (e.g. loaded from a snapshot) in a builder:
  // reconstructs the transient state — event interner, projection-extension
  // maps, and for kCapped the frontier arena (classes
  // [frontier_begin, size)) — by replaying the stored columns in id order,
  // which reproduces the live maps byte for byte.
  void AdoptSpace(std::unique_ptr<ComputationSpace> space,
                  FrontierState frontier, std::size_t frontier_begin,
                  const System* system, const EnumerationLimits& limits);

  void RequireSpace(const char* what) const;
  // First class id of the parked frontier level (kCapped builders only);
  // what a v2 snapshot stores as frontier_begin.  Lives here because State
  // is incomplete outside space.cc.
  std::size_t FrontierBegin() const;
  // The level-synchronous BFS loop: expands full levels while
  // depth < target_depth, then runs the cap pass (extendability check +
  // empty successor rows for the frontier) and returns with the frontier
  // retained — or marks the build complete when a level comes up empty.
  // Between levels it trims residency to the budget (cold segments spill
  // behind the frontier).
  void RunLevels(int target_depth, internal::WorkerPool* pool);
  // Re-derives every sorted/derived column after RunLevels or Ingest:
  // merges the new canonical-index suffix, rebuilds the per-process CSR
  // buckets, republishes/replays the group indexes in place, records
  // built_depth, and drops growth slack.
  void Finalize(internal::WorkerPool* pool);

  const System* system_ = nullptr;
  EnumerationLimits limits_;
  std::unique_ptr<ComputationSpace> space_;
  std::unique_ptr<State> state_;
  bool sealed_ = false;    // no frontier (snapshot without builder state)
  bool complete_ = false;  // BFS exhausted below the depth cap
  bool capped_ = false;    // frontier parked at the depth cap
  bool ingested_ = false;  // Ingest minted classes: level order broken
};

}  // namespace hpl

#endif  // HPL_CORE_SPACE_H_
