// ComputationSpace: the (finite) set of all computations of a System,
// organized for knowledge evaluation.
//
// "P knows b at x" quantifies over every system computation y with x [P] y
// (paper Section 4.1), so deciding knowledge requires the whole computation
// set.  Enumerate() explores the system exhaustively from the empty
// computation.  Because every predicate must be [D]-invariant (the paper
// assumes "x [D] y implies b at x = b at y"), the space stores exactly one
// canonical representative per [D]-equivalence class; this both compresses
// the space and enforces the invariance assumption by construction.
//
// The store is columnar.  Events are interned into a shared pool (a system's
// event alphabet is bounded by its protocol, not by its class count), and a
// class is 12 bytes: its BFS parent, the pool id of the one event that
// extends the parent into it, and the splice position where the canonical
// scheduler emits that event — canonical sequences are never stored, they
// are materialized on demand by replaying the splice chain from the root
// (At(), therefore, returns by value).  Successor lists and per-process
// buckets are CSR-flattened (offset array + flat uint32_t payload), and the
// canonical-form index is a sorted (hash, id) column.  Compared to the seed
// layout (one owned std::vector<Event> per class, vector-of-vector buckets
// and successor lists) this cuts bytes per class by roughly an order of
// magnitude — MemoryUsage() reports the exact split, plus the seed layout's
// equivalent footprint for the same space — and makes every bucket sweep a
// contiguous scan.
//
// Per-process buckets group computations with equal projections, so the
// [p]-equivalence classes are materialized and "for all y: x [P] y" becomes
// an intersection of bucket scans instead of a scan of the whole space.
// Projection classes are assigned *during* enumeration: a one-event
// extension leaves every projection unchanged except on the extending
// event's process, where it appends that event — so a child's [p]-class is
// inherited from its parent for p != e.process and looked up (or minted) by
// the key (parent's [p]-class, event id) for p == e.process.  Classifying a
// class costs O(1) amortized instead of hashing its projections.
//
// On top of the singleton [p]-classes sits the group ([G]-class) layer: for
// a process set G, the [G]-equivalence x [G] y (equal projections on every
// member) is the common refinement of the member [p]-partitions, and its
// classes are materialized as a GroupIndex — one dense class id per
// [D]-class plus a CSR bucket column, exactly the singleton layout.  A
// child whose extending event lies outside G inherits its parent's
// [G]-class; otherwise the class is looked up (or minted) by the child's
// tuple of member [p]-class ids.  (Unlike the singleton case, the key
// (parent [G]-class, event) would be UNSOUND for |G| >= 2: the same
// [G]-tuple is reachable through parents that extend different member
// processes, which would mint duplicate ids — the tuple key is canonical.)
// Indexes are built incrementally during the BFS merge for the groups in
// EnumerationLimits::groups, and lazily afterwards by replaying the class
// links in id order through EnsureGroupIndex's mask-keyed cache; both scans
// visit classes in the same order, so they mint byte-identical tables.
//
// Enumeration is level-synchronous: the BFS frontier expands one depth
// level at a time, extensions dedup through per-shard hash maps over the
// level's interned-id sequences, and shards merge in the sequential
// discovery order — so class ids, successor lists, projection classes, and
// therefore every knowledge result are byte-identical for every
// `num_threads` value (`num_threads = 1` runs the same phases inline).
// Expansion calls `System::EnabledEvents` concurrently from multiple
// threads, which is safe for every system in the repo because EnabledEvents
// is a pure function of the computation; custom systems must preserve that
// (no mutable state in a const EnabledEvents).
#ifndef HPL_CORE_SPACE_H_
#define HPL_CORE_SPACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/computation.h"
#include "core/system.h"
#include "core/types.h"

namespace hpl {

namespace internal {
class WorkerPool;
struct SpaceSnapshotIO;  // serialization.cc: binary snapshot save/load
}  // namespace internal

struct EnumerationLimits {
  // Hard cap on events per computation.  Enumeration throws if any branch
  // is still extendable at this depth, unless `allow_truncation` is set —
  // knowledge results on a truncated space are approximations and
  // Enumerate() records the truncation in `ComputationSpace::truncated()`.
  // Must fit the columnar store's 16-bit splice links: at most 65535.
  int max_depth = 64;
  // Hard cap on the number of [D]-classes (guards against blow-up).
  std::size_t max_classes = 20'000'000;
  bool allow_truncation = false;
  // When true (default), computations are deduplicated by [D]-canonical
  // form — sound for the paper's asynchronous model, whose computation
  // sets are closed under valid permutations.  Timed/synchronous systems
  // (e.g. protocols/lockstep.h) are NOT permutation closed: they must set
  // this to false so the space keeps their literal interleavings.
  bool canonicalize = true;
  // Worker threads for enumeration.  0 = std::thread::hardware_concurrency
  // (at least 1); 1 = the same level phases run inline.  Any value produces
  // byte-identical class ids and derived indexes (see the header comment).
  int num_threads = 0;
  // Process groups whose [G]-class indexes are materialized incrementally
  // during the BFS merge (one inherit-or-mint step per discovered class)
  // instead of by a whole-space replay on first use.  Duplicates (by mask)
  // are built once; empty sets are rejected.  The resulting tables are
  // byte-identical to the lazy EnsureGroupIndex path.
  std::vector<ProcessSet> groups = {};
};

class ComputationSpace {
 public:
  // Exhaustively enumerates the system's computations.
  static ComputationSpace Enumerate(const System& system,
                                    const EnumerationLimits& limits = {});

  int num_processes() const noexcept { return num_processes_; }
  ProcessSet AllProcesses() const { return ProcessSet::All(num_processes_); }
  std::size_t size() const noexcept { return links_.size(); }
  bool truncated() const noexcept { return truncated_; }
  const std::string& system_name() const noexcept { return system_name_; }

  // Canonical representative of class `id`, materialized from the columnar
  // store by replaying the class's splice chain (O(length^2) uint32 moves
  // plus one Event copy per event; lengths are <= max_depth).  Returns by
  // value — bind with `const Computation& x = space.At(id)` when a
  // reference is convenient (lifetime extension applies).
  Computation At(std::size_t id) const;

  // Event count of class `id` without materializing it (O(1)).
  std::size_t LengthOf(std::size_t id) const {
    return links_[id].length;
  }

  // Index of the [D]-class of `c`, if `c` (or a permutation of it) is a
  // computation of the system.
  std::optional<std::size_t> IndexOf(const Computation& c) const;

  // As IndexOf but throws with context when absent.
  std::size_t RequireIndex(const Computation& c) const;

  // Id of the [p]-equivalence class of computation `id` (dense ints).
  std::uint32_t ProjectionClass(std::size_t id, ProcessId p) const {
    return proj_class_[id * static_cast<std::size_t>(num_processes_) +
                       static_cast<std::size_t>(p)];
  }

  // Number of [p]-equivalence classes (valid class ids are dense in
  // [0, NumProjectionClasses(p))).
  std::size_t NumProjectionClasses(ProcessId p) const {
    return bucket_offsets_.at(static_cast<std::size_t>(p)).size() - 1;
  }

  // All computations y with At(id) [p] y (including id itself), ascending —
  // one contiguous slice of the process's CSR bucket column.
  std::span<const std::uint32_t> Bucket(ProcessId p, std::uint32_t cls) const {
    const auto& offsets = bucket_offsets_.at(static_cast<std::size_t>(p));
    const auto& ids = bucket_ids_[static_cast<std::size_t>(p)];
    return std::span<const std::uint32_t>(ids.data() + offsets.at(cls),
                                          offsets.at(cls + 1) - offsets[cls]);
  }

  // One materialized [G]-class partition: the common refinement of the
  // member [p]-partitions, stored like the singleton layer — a dense class
  // id per [D]-class and a CSR bucket column.  Instances are owned by the
  // space (built by Enumerate for EnumerationLimits::groups, or lazily by
  // EnsureGroupIndex) and their addresses are stable for the space's
  // lifetime, so hot sweeps hold the reference and never touch the cache.
  class GroupIndex {
   public:
    std::uint64_t mask() const noexcept { return mask_; }
    std::size_t NumClasses() const noexcept { return offsets_.size() - 1; }
    std::uint32_t ClassOf(std::size_t id) const { return cls_[id]; }
    // All y with x [G] y for any x in [G]-class `cls` (ascending ids).
    std::span<const std::uint32_t> Bucket(std::uint32_t cls) const {
      return std::span<const std::uint32_t>(ids_.data() + offsets_[cls],
                                            offsets_[cls + 1] - offsets_[cls]);
    }
    // First (smallest) member of [G]-class `cls` — its representative.
    std::uint32_t Representative(std::uint32_t cls) const {
      return ids_[offsets_[cls]];
    }
    std::size_t MemoryBytes() const noexcept {
      return (cls_.capacity() + offsets_.capacity() + ids_.capacity()) *
             sizeof(std::uint32_t);
    }

   private:
    friend class ComputationSpace;
    friend struct internal::SpaceSnapshotIO;
    std::uint64_t mask_ = 0;
    std::vector<std::uint32_t> cls_;      // per [D]-class: its [G]-class
    std::vector<std::uint32_t> offsets_;  // CSR offsets (NumClasses() + 1)
    std::vector<std::uint32_t> ids_;      // CSR payload, ascending per bucket
  };

  // The [G]-class index for `g`, built on first use (a replay of the class
  // links in id order) and cached by process mask; `g` must be non-empty.
  // Thread-safe; the returned reference stays valid for the space's
  // lifetime.  |G| = 1 builds a real table whose classes coincide with the
  // singleton ProjectionClass/Bucket columns.
  const GroupIndex& EnsureGroupIndex(ProcessSet g) const;

  // True when the [G]-class index for `g` is already materialized (via
  // EnumerationLimits::groups or a previous EnsureGroupIndex).
  bool HasGroupIndex(ProcessSet g) const;

  // Convenience forwards to EnsureGroupIndex(g) — each call pays the cache
  // lookup; hold the GroupIndex reference on hot paths.
  std::uint32_t GroupClass(std::size_t id, ProcessSet g) const {
    return EnsureGroupIndex(g).ClassOf(id);
  }
  std::size_t NumGroupClasses(ProcessSet g) const {
    return EnsureGroupIndex(g).NumClasses();
  }
  std::span<const std::uint32_t> GroupBucket(ProcessSet g,
                                             std::uint32_t cls) const {
    return EnsureGroupIndex(g).Bucket(cls);
  }

  // Iterates ids of all y with At(id) [P] y.  P empty relates everything
  // (the paper: x [{}] y for all x, y).  A thin forward to
  // ForEachIsomorphicWhile, so `fn` is invoked directly — no std::function
  // on the sweep path.
  template <typename Fn>
  void ForEachIsomorphic(std::size_t id, ProcessSet set, Fn&& fn) const {
    ForEachIsomorphicWhile(id, set, [&fn](std::size_t y) {
      fn(y);
      return true;
    });
  }

  // As ForEachIsomorphic, but stops as soon as `fn` returns false.  The
  // canonical implementation of the [P]-relation sweep: scans the smallest
  // per-process bucket and verifies the other processes via class ids.
  template <typename Fn>
  void ForEachIsomorphicWhile(std::size_t id, ProcessSet set, Fn&& fn) const {
    if (set.IsEmpty()) {
      // x [{}] y holds for all computations.
      for (std::size_t y = 0; y < size(); ++y)
        if (!fn(y)) return;
      return;
    }
    ProcessId best = set.First();
    std::size_t best_size = SIZE_MAX;
    set.ForEach([&](ProcessId p) {
      const std::size_t bucket_size = Bucket(p, ProjectionClass(id, p)).size();
      if (bucket_size < best_size) {
        best_size = bucket_size;
        best = p;
      }
    });
    for (std::uint32_t y : Bucket(best, ProjectionClass(id, best)))
      if (Isomorphic(id, y, set) && !fn(y)) return;
  }

  // True iff At(a) [P] At(b) — O(|P|) via class ids.
  bool Isomorphic(std::size_t a, std::size_t b, ProcessSet set) const;

  // Decides the composed relation At(a) [P0 P1 ... Pn] At(b) by BFS through
  // the per-stage equivalence classes.
  bool ComposedIsomorphic(std::size_t a, std::size_t b,
                          const std::vector<ProcessSet>& stages) const;

  // Constructive witness: intermediate computations y1..y_{n-1} with
  // a [P0] y1 [P1] y2 ... [Pn] b (class ids, including both endpoints).
  // Empty when the relation does not hold.  This realizes the existential
  // in the paper's composed-isomorphism definition, and in Theorem 1.
  std::vector<std::size_t> ComposedPath(
      std::size_t a, std::size_t b,
      const std::vector<ProcessSet>& stages) const;

  // The ids of all z with At(a) [P0 ... Pn] z (BFS frontier after the last
  // stage).  Used to study Theorem 3's shrink/grow semantics.
  std::vector<std::size_t> ComposedReachable(
      std::size_t a, const std::vector<ProcessSet>& stages) const;

  // Classes whose representative extends At(id) by exactly one event
  // (successor classes), and the extending events.  Backed by the CSR
  // successor columns; iteration yields Successor values whose events are
  // copied out of the shared pool.
  struct Successor {
    std::size_t class_id;
    Event event;
  };
  class SuccessorRange {
   public:
    class Iterator {
     public:
      using value_type = Successor;
      using difference_type = std::ptrdiff_t;
      Iterator(const ComputationSpace* space, std::uint32_t i)
          : space_(space), i_(i) {}
      Successor operator*() const { return space_->SuccessorAt(i_); }
      Iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator==(const Iterator& o) const { return i_ == o.i_; }

     private:
      const ComputationSpace* space_;
      std::uint32_t i_;
    };

    std::size_t size() const noexcept { return end_ - begin_; }
    bool empty() const noexcept { return begin_ == end_; }
    Successor operator[](std::size_t k) const {
      return space_->SuccessorAt(begin_ + static_cast<std::uint32_t>(k));
    }
    Iterator begin() const { return Iterator(space_, begin_); }
    Iterator end() const { return Iterator(space_, end_); }

   private:
    friend class ComputationSpace;
    SuccessorRange(const ComputationSpace* space, std::uint32_t begin,
                   std::uint32_t end)
        : space_(space), begin_(begin), end_(end) {}
    const ComputationSpace* space_;
    std::uint32_t begin_;
    std::uint32_t end_;
  };
  SuccessorRange SuccessorsOf(std::size_t id) const {
    return SuccessorRange(this, succ_offsets_.at(id), succ_offsets_.at(id + 1));
  }

  // Ids of all computations in increasing length order.  BFS discovers
  // classes level by level, so this is simply 0..size()-1.
  std::vector<std::size_t> IdsByLength() const;

  // Exact heap footprint of the columnar store, in bytes, plus what the
  // seed's array-of-structs layout would need for the same space (one owned
  // event vector per class, per-class successor vectors, vector-of-vector
  // buckets, hash-map canonical index) — the before/after line benchmarks
  // report.  `bytes_total` counts only the columnar columns below it.
  struct MemoryStats {
    std::size_t classes = 0;
    std::size_t bytes_event_pool = 0;    // interned events incl. label heap
    std::size_t bytes_class_links = 0;   // (parent, event, pos, length)
    std::size_t bytes_canon_index = 0;   // sorted (hash, id) columns
    std::size_t bytes_projection = 0;    // proj_class_
    std::size_t bytes_buckets = 0;       // CSR offsets + payload
    std::size_t bytes_successors = 0;    // CSR offsets + payload
    std::size_t bytes_group_index = 0;   // cached [G]-class indexes
    std::size_t bytes_total = 0;
    std::size_t bytes_aos_equivalent = 0;
    double BytesPerClass() const {
      return classes == 0 ? 0.0
                          : static_cast<double>(bytes_total) /
                                static_cast<double>(classes);
    }
  };
  MemoryStats MemoryUsage() const;

 private:
  // Snapshot save/load (serialization.cc) reads and rebuilds the columnar
  // members directly; it is the only code outside this class that may.
  friend struct internal::SpaceSnapshotIO;

  ComputationSpace() = default;

  // One class of the columnar store: the BFS parent, the extending event
  // (pool id), the canonical splice position of that event in the parent's
  // sequence, and the sequence length.  The root (class 0) has length 0.
  struct ClassLink {
    std::uint32_t parent = 0;
    std::uint32_t event = 0;
    std::uint16_t pos = 0;
    std::uint16_t length = 0;
  };

  // The shared level-synchronous BFS (phase 1 of Enumerate): fills links_,
  // event_pool_, proj_class_ (via the incremental projection maps),
  // canon_hash_/canon_id_, the successor CSR columns, and truncated_.
  // `pool` may be null: every phase then runs inline, in the exact order
  // the pooled phases replay.
  static void DiscoverClasses(const System& system,
                              const EnumerationLimits& limits,
                              internal::WorkerPool* pool,
                              ComputationSpace& space);
  // Builds the per-process CSR buckets from proj_class_ by counting sort
  // (phase 2); one independent task per process when a pool is given.  Also
  // finishes the CSR columns of any group indexes minted during phase 1.
  static void BuildBuckets(ComputationSpace& space, internal::WorkerPool* pool);

  // Fills `index` (mask already set) by replaying the class links in id
  // order — the same inherit-or-mint scan the incremental path runs during
  // the BFS merge, so both produce byte-identical tables.
  void BuildGroupIndex(GroupIndex& index) const;

  // Counting sort of the CSR bucket column of a finished `cls_` column
  // (offsets_ pre-assigned to NumClasses() + 1 zeros by the caller).
  static void BuildGroupBuckets(GroupIndex& index);

  // Interned-event-id form of the canonical sequence of class `id`,
  // materialized by replaying the splice chain from the root.
  std::vector<std::uint32_t> CanonicalIdsOf(std::size_t id) const;

  Successor SuccessorAt(std::uint32_t i) const {
    return Successor{succ_class_[i], event_pool_[succ_event_[i]]};
  }

  int num_processes_ = 0;
  bool truncated_ = false;
  bool canonicalize_ = true;
  std::string system_name_;

  // Columnar class store (see header comment).
  std::vector<Event> event_pool_;
  std::vector<ClassLink> links_;
  // Canonical-form index: hashes sorted ascending, ids carried alongside.
  std::vector<std::size_t> canon_hash_;
  std::vector<std::uint32_t> canon_id_;
  std::vector<std::uint32_t> proj_class_;  // size() * num_processes_
  // CSR buckets: bucket_ids_[p][bucket_offsets_[p][cls] ..
  // bucket_offsets_[p][cls+1]) = ids of computations in [p]-class cls.
  std::vector<std::vector<std::uint32_t>> bucket_offsets_;
  std::vector<std::vector<std::uint32_t>> bucket_ids_;
  // CSR successors: parallel (class, event-pool-id) columns.
  std::vector<std::uint32_t> succ_offsets_;  // size() + 1
  std::vector<std::uint32_t> succ_class_;
  std::vector<std::uint32_t> succ_event_;
  // Group-partition cache, keyed by process mask.  unique_ptr values keep
  // GroupIndex addresses stable across rehashes; the mutex guards only the
  // map (indexes are immutable once published).  Held by unique_ptr so the
  // space stays movable.
  mutable std::unique_ptr<std::mutex> group_mutex_ =
      std::make_unique<std::mutex>();
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<GroupIndex>>
      group_index_;
};

}  // namespace hpl

#endif  // HPL_CORE_SPACE_H_
