// ComputationSpace: the (finite) set of all computations of a System,
// organized for knowledge evaluation.
//
// "P knows b at x" quantifies over every system computation y with x [P] y
// (paper Section 4.1), so deciding knowledge requires the whole computation
// set.  Enumerate() explores the system exhaustively from the empty
// computation.  Because every predicate must be [D]-invariant (the paper
// assumes "x [D] y implies b at x = b at y"), the space stores exactly one
// canonical representative per [D]-equivalence class; this both compresses
// the space and enforces the invariance assumption by construction.
//
// Per-process buckets group computations with equal projections, so the
// [p]-equivalence classes are materialized and "for all y: x [P] y" becomes
// an intersection of bucket scans instead of a scan of the whole space.
//
// Enumeration is parallel: a fixed worker pool expands the BFS frontier one
// depth level at a time, dedups extensions through per-shard hash maps
// (sharded by canonical-form hash), and merges shards in the sequential
// discovery order — so class ids, successor lists, projection classes, and
// therefore every knowledge result are byte-identical for every
// `num_threads` value.  `num_threads = 1` runs the plain sequential loop.
// Parallel expansion calls `System::EnabledEvents` concurrently from
// multiple threads, which is safe for every system in the repo because
// EnabledEvents is a pure function of the computation; custom systems must
// preserve that (no mutable state in a const EnabledEvents).
#ifndef HPL_CORE_SPACE_H_
#define HPL_CORE_SPACE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/computation.h"
#include "core/system.h"
#include "core/types.h"

namespace hpl {

namespace internal {
class WorkerPool;
}  // namespace internal

struct EnumerationLimits {
  // Hard cap on events per computation.  Enumeration throws if any branch
  // is still extendable at this depth, unless `allow_truncation` is set —
  // knowledge results on a truncated space are approximations and
  // Enumerate() records the truncation in `ComputationSpace::truncated()`.
  int max_depth = 64;
  // Hard cap on the number of [D]-classes (guards against blow-up).
  std::size_t max_classes = 5'000'000;
  bool allow_truncation = false;
  // When true (default), computations are deduplicated by [D]-canonical
  // form — sound for the paper's asynchronous model, whose computation
  // sets are closed under valid permutations.  Timed/synchronous systems
  // (e.g. protocols/lockstep.h) are NOT permutation closed: they must set
  // this to false so the space keeps their literal interleavings.
  bool canonicalize = true;
  // Worker threads for enumeration.  0 = std::thread::hardware_concurrency
  // (at least 1); 1 = the exact sequential code path.  Any value produces
  // byte-identical class ids and derived indexes (see the header comment).
  int num_threads = 0;
};

class ComputationSpace {
 public:
  // Exhaustively enumerates the system's computations.
  static ComputationSpace Enumerate(const System& system,
                                    const EnumerationLimits& limits = {});

  int num_processes() const noexcept { return num_processes_; }
  ProcessSet AllProcesses() const { return ProcessSet::All(num_processes_); }
  std::size_t size() const noexcept { return computations_.size(); }
  bool truncated() const noexcept { return truncated_; }
  const std::string& system_name() const noexcept { return system_name_; }

  // Canonical representative of class `id`.
  const Computation& At(std::size_t id) const { return computations_.at(id); }

  // Index of the [D]-class of `c`, if `c` (or a permutation of it) is a
  // computation of the system.
  std::optional<std::size_t> IndexOf(const Computation& c) const;

  // As IndexOf but throws with context when absent.
  std::size_t RequireIndex(const Computation& c) const;

  // Id of the [p]-equivalence class of computation `id` (dense ints).
  std::uint32_t ProjectionClass(std::size_t id, ProcessId p) const {
    return proj_class_.at(id * num_processes_ + p);
  }

  // Number of [p]-equivalence classes (valid class ids are dense in
  // [0, NumProjectionClasses(p))).
  std::size_t NumProjectionClasses(ProcessId p) const {
    return buckets_.at(p).size();
  }

  // All computations y with At(id) [p] y (including id itself).
  const std::vector<std::uint32_t>& Bucket(ProcessId p,
                                           std::uint32_t cls) const {
    return buckets_.at(p).at(cls);
  }

  // Iterates ids of all y with At(id) [P] y.  P empty relates everything
  // (the paper: x [{}] y for all x, y).
  void ForEachIsomorphic(std::size_t id, ProcessSet set,
                         const std::function<void(std::size_t)>& fn) const;

  // As ForEachIsomorphic, but stops as soon as `fn` returns false.  The
  // canonical implementation of the [P]-relation sweep: scans the smallest
  // per-process bucket and verifies the other processes via class ids.
  template <typename Fn>
  void ForEachIsomorphicWhile(std::size_t id, ProcessSet set, Fn&& fn) const {
    if (set.IsEmpty()) {
      // x [{}] y holds for all computations.
      for (std::size_t y = 0; y < size(); ++y)
        if (!fn(y)) return;
      return;
    }
    ProcessId best = set.First();
    std::size_t best_size = SIZE_MAX;
    set.ForEach([&](ProcessId p) {
      const auto& bucket = Bucket(p, ProjectionClass(id, p));
      if (bucket.size() < best_size) {
        best_size = bucket.size();
        best = p;
      }
    });
    for (std::uint32_t y : Bucket(best, ProjectionClass(id, best)))
      if (Isomorphic(id, y, set) && !fn(y)) return;
  }

  // True iff At(a) [P] At(b) — O(|P|) via class ids.
  bool Isomorphic(std::size_t a, std::size_t b, ProcessSet set) const;

  // Decides the composed relation At(a) [P0 P1 ... Pn] At(b) by BFS through
  // the per-stage equivalence classes.
  bool ComposedIsomorphic(std::size_t a, std::size_t b,
                          const std::vector<ProcessSet>& stages) const;

  // Constructive witness: intermediate computations y1..y_{n-1} with
  // a [P0] y1 [P1] y2 ... [Pn] b (class ids, including both endpoints).
  // Empty when the relation does not hold.  This realizes the existential
  // in the paper's composed-isomorphism definition, and in Theorem 1.
  std::vector<std::size_t> ComposedPath(
      std::size_t a, std::size_t b,
      const std::vector<ProcessSet>& stages) const;

  // The ids of all z with At(a) [P0 ... Pn] z (BFS frontier after the last
  // stage).  Used to study Theorem 3's shrink/grow semantics.
  std::vector<std::size_t> ComposedReachable(
      std::size_t a, const std::vector<ProcessSet>& stages) const;

  // Ids of classes whose representative extends At(id) by exactly one event
  // (successor classes), and the extending events.
  struct Successor {
    std::size_t class_id;
    Event event;
  };
  const std::vector<Successor>& SuccessorsOf(std::size_t id) const {
    return successors_.at(id);
  }

  // Ids of all computations in increasing length order.
  const std::vector<std::size_t>& IdsByLength() const { return by_length_; }

 private:
  ComputationSpace() = default;

  // BFS class discovery (phase 1 of Enumerate): fills computations_,
  // canon_index_, successors_, and truncated_.
  static void DiscoverClassesSequential(const System& system,
                                        const EnumerationLimits& limits,
                                        ComputationSpace& space);
  static void DiscoverClassesParallel(const System& system,
                                      const EnumerationLimits& limits,
                                      internal::WorkerPool& pool,
                                      ComputationSpace& space);
  // Projection classification (phase 2): fills proj_class_ and buckets_,
  // one independent task per process when a pool is given.
  static void ClassifyProjections(ComputationSpace& space,
                                  internal::WorkerPool* pool);
  static void ClassifyProjectionsFor(ComputationSpace& space, ProcessId p);

  int num_processes_ = 0;
  bool truncated_ = false;
  bool canonicalize_ = true;
  std::string system_name_;
  std::vector<Computation> computations_;
  std::unordered_map<std::size_t, std::vector<std::uint32_t>> canon_index_;
  std::vector<std::uint32_t> proj_class_;  // size * num_processes_
  // buckets_[p][cls] = ids of computations in [p]-class cls.
  std::vector<std::vector<std::vector<std::uint32_t>>> buckets_;
  std::vector<std::vector<Successor>> successors_;
  std::vector<std::size_t> by_length_;
};

}  // namespace hpl

#endif  // HPL_CORE_SPACE_H_
