// Seeded random finite systems for property-based testing.
//
// A RandomSystem draws a finite "message script" — a pool of potential
// messages with fixed endpoints — plus optional internal events per
// process, and admits every computation in which each process performs its
// own events in script order, interleaved arbitrarily and with receives
// allowed any time after the matching send.  The computation set is finite
// (bounded by the script), fully enumerable, and varied enough to exercise
// every theorem checker.
#ifndef HPL_CORE_RANDOM_SYSTEM_H_
#define HPL_CORE_RANDOM_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.h"

namespace hpl {

struct RandomSystemOptions {
  int num_processes = 3;
  int num_messages = 3;          // size of the message pool
  int internal_events = 1;       // per process
  bool optional_sends = false;   // processes may stop before sending all
  std::uint64_t seed = 1;
};

class RandomSystem : public System {
 public:
  explicit RandomSystem(const RandomSystemOptions& options);

  int NumProcesses() const override { return options_.num_processes; }
  std::vector<Event> EnabledEvents(const Computation& x) const override;
  std::string Name() const override;

  // The scripted order of sends per process (for test introspection).
  const std::vector<std::vector<Event>>& scripts() const { return scripts_; }

 private:
  RandomSystemOptions options_;
  // scripts_[p] = ordered local agenda of process p (sends + internals).
  std::vector<std::vector<Event>> scripts_;
};

}  // namespace hpl

#endif  // HPL_CORE_RANDOM_SYSTEM_H_
