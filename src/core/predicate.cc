#include "core/predicate.h"

namespace hpl {

Predicate Predicate::operator!() const {
  Fn self = fn_;
  return Predicate("!(" + name_ + ")",
                   [self](const Computation& x) { return !self(x); });
}

Predicate Predicate::operator&&(const Predicate& other) const {
  Fn a = fn_, b = other.fn_;
  return Predicate("(" + name_ + " && " + other.name_ + ")",
                   [a, b](const Computation& x) { return a(x) && b(x); });
}

Predicate Predicate::operator||(const Predicate& other) const {
  Fn a = fn_, b = other.fn_;
  return Predicate("(" + name_ + " || " + other.name_ + ")",
                   [a, b](const Computation& x) { return a(x) || b(x); });
}

Predicate Predicate::Implies(const Predicate& other) const {
  Fn a = fn_, b = other.fn_;
  return Predicate("(" + name_ + " => " + other.name_ + ")",
                   [a, b](const Computation& x) { return !a(x) || b(x); });
}

Predicate Predicate::True() {
  return Predicate("true", [](const Computation&) { return true; });
}

Predicate Predicate::False() {
  return Predicate("false", [](const Computation&) { return false; });
}

Predicate Predicate::CountOnAtLeast(ProcessId p, int k) {
  return Predicate(
      "count(p" + std::to_string(p) + ")>=" + std::to_string(k),
      [p, k](const Computation& x) { return x.CountOn(p) >= k; });
}

Predicate Predicate::DidInternal(ProcessId p, std::string label) {
  return Predicate(
      "did(p" + std::to_string(p) + "," + label + ")",
      [p, label = std::move(label)](const Computation& x) {
        for (const Event& e : x.events())
          if (e.process == p && e.IsInternal() && e.label == label)
            return true;
        return false;
      });
}

Predicate Predicate::HasLabel(std::string label) {
  return Predicate("has(" + label + ")",
                   [label = std::move(label)](const Computation& x) {
                     for (const Event& e : x.events())
                       if (e.label == label) return true;
                     return false;
                   });
}

Predicate Predicate::Sent(MessageId m) {
  return Predicate("sent(m" + std::to_string(m) + ")",
                   [m](const Computation& x) {
                     for (const Event& e : x.events())
                       if (e.IsSend() && e.message == m) return true;
                     return false;
                   });
}

Predicate Predicate::Received(MessageId m) {
  return Predicate("received(m" + std::to_string(m) + ")",
                   [m](const Computation& x) {
                     for (const Event& e : x.events())
                       if (e.IsReceive() && e.message == m) return true;
                     return false;
                   });
}

Predicate Predicate::AllMessagesDelivered() {
  return Predicate("all_delivered", [](const Computation& x) {
    int sends = 0, receives = 0;
    for (const Event& e : x.events()) {
      if (e.IsSend()) ++sends;
      if (e.IsReceive()) ++receives;
    }
    return sends == receives;
  });
}

}  // namespace hpl
