#include "core/diagram.h"

#include "core/isomorphism.h"

namespace hpl {

IsomorphismDiagram::IsomorphismDiagram(std::vector<Computation> vertices,
                                       int num_processes,
                                       std::vector<std::string> names,
                                       bool include_empty)
    : vertices_(std::move(vertices)),
      names_(std::move(names)),
      num_processes_(num_processes) {
  if (!names_.empty() && names_.size() != vertices_.size())
    throw ModelError("IsomorphismDiagram: names/vertices size mismatch");
  if (names_.empty()) {
    names_.reserve(vertices_.size());
    for (std::size_t i = 0; i < vertices_.size(); ++i)
      names_.push_back("c" + std::to_string(i));
  }
  const ProcessSet universe = ProcessSet::All(num_processes_);
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices_.size(); ++j) {
      const ProcessSet label =
          MaxIsomorphismLabel(vertices_[i], vertices_[j], universe);
      if (label.IsEmpty() && !include_empty) continue;
      edges_.push_back(DiagramEdge{i, j, label});
    }
  }
}

IsomorphismDiagram IsomorphismDiagram::FromSpace(
    const ComputationSpace& space, bool include_empty) {
  std::vector<Computation> vertices;
  vertices.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i)
    vertices.push_back(space.At(i));
  return IsomorphismDiagram(std::move(vertices), space.num_processes(), {},
                            include_empty);
}

ProcessSet IsomorphismDiagram::LabelBetween(std::size_t a,
                                            std::size_t b) const {
  if (a == b) return ProcessSet::All(num_processes_);  // the [D] self loop
  for (const DiagramEdge& e : edges_)
    if ((e.from == a && e.to == b) || (e.from == b && e.to == a))
      return e.label;
  return ProcessSet::Empty();
}

std::string IsomorphismDiagram::ToDot() const {
  std::string out = "graph isomorphism {\n  node [shape=circle];\n";
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    out += "  \"" + names_[i] + "\" [tooltip=\"" +
           vertices_[i].ToString() + "\"];\n";
  }
  for (const DiagramEdge& e : edges_) {
    out += "  \"" + names_[e.from] + "\" -- \"" + names_[e.to] +
           "\" [label=\"" + e.label.ToString() + "\"];\n";
  }
  out += "}\n";
  return out;
}

std::string IsomorphismDiagram::ToTable() const {
  std::string out;
  for (const DiagramEdge& e : edges_) {
    out += names_[e.from] + " --" + e.label.ToString() + "-- " +
           names_[e.to] + "\n";
  }
  return out;
}

}  // namespace hpl
