// Events: the atoms of process and system computations (paper Section 2).
//
// "An event on a process is either a send, a receive or an internal event."
// Events are *distinguished*: two send events of the same payload differ in
// their MessageId.  Equality is structural; a process computation is a
// sequence of Event values, and isomorphism [p] compares those sequences.
#ifndef HPL_CORE_EVENT_H_
#define HPL_CORE_EVENT_H_

#include <cstddef>
#include <string>

#include "core/types.h"

namespace hpl {

enum class EventKind : std::uint8_t { kInternal, kSend, kReceive };

const char* ToString(EventKind kind) noexcept;

// A single event on a process.
//
//  - internal: peer/message unset; `label` names the action (used by
//    predicates, e.g. "flip", "crash", "token_arrived").
//  - send:    `peer` is the destination process, `message` the (unique)
//    message id, `label` the payload tag.
//  - receive: `peer` is the *sender*, `message` matches the corresponding
//    send, `label` the payload tag (must equal the send's label).
struct Event {
  ProcessId process = kNoProcess;
  EventKind kind = EventKind::kInternal;
  MessageId message = kNoMessage;
  ProcessId peer = kNoProcess;
  std::string label;

  bool operator==(const Event&) const = default;

  bool IsInternal() const noexcept { return kind == EventKind::kInternal; }
  bool IsSend() const noexcept { return kind == EventKind::kSend; }
  bool IsReceive() const noexcept { return kind == EventKind::kReceive; }

  // "e is on P": the event's process belongs to the set.
  bool IsOn(ProcessSet set) const { return set.Contains(process); }

  std::string ToString() const;
};

// Convenience constructors used pervasively in tests and examples.
Event Internal(ProcessId p, std::string label = "");
Event Send(ProcessId from, ProcessId to, MessageId m, std::string label = "");
Event Receive(ProcessId at, ProcessId from, MessageId m,
              std::string label = "");

// Stable hash of an event (structural).
std::size_t HashEvent(const Event& e) noexcept;

}  // namespace hpl

#endif  // HPL_CORE_EVENT_H_
