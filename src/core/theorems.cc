#include "core/theorems.h"

#include <algorithm>

#include "core/isomorphism.h"

namespace hpl {
namespace {

// Nested-knowledge formula K{P1} K{P2} ... K{Pn} atom(b).
FormulaPtr NestedKnows(const std::vector<ProcessSet>& chain,
                       const Predicate& b) {
  return Formula::KnowsChain(chain, Formula::Atom(b));
}

}  // namespace

Theorem1Result CheckTheorem1(const ComputationSpace& space,
                             const Computation& x, const Computation& z,
                             const std::vector<ProcessSet>& stages) {
  if (!x.IsPrefixOf(z))
    throw ModelError("CheckTheorem1: x must be a prefix of z");
  Theorem1Result result;
  result.composed_isomorphic = space.ComposedIsomorphic(
      space.RequireIndex(x), space.RequireIndex(z), stages);
  ChainDetector detector(z, space.num_processes(), x.size());
  result.chain = detector.FindChain(stages);
  return result;
}

ExtensionPrincipleResult CheckExtensionPrinciple(
    const ComputationSpace& space) {
  ExtensionPrincipleResult out;
  const int np = space.num_processes();
  for (std::size_t xid = 0; xid < space.size(); ++xid) {
    const Computation& x = space.At(xid);
    for (const auto& succ : space.SuccessorsOf(xid)) {
      const Event& e = succ.event;
      const ProcessSet p = ProcessSet::Of(e.process);
      (void)np;
      for (std::size_t yid = 0; yid < space.size(); ++yid) {
        const Computation& y = space.At(yid);
        // Part 1: e internal or send, x [P] y, (x;e) computation => (y;e)
        // computation (and the system, being one fixed system, must admit
        // it — we check admissibility in the model sense: validity).
        if ((e.IsInternal() || e.IsSend()) && IsomorphicWrt(x, y, p)) {
          ++out.instances_checked;
          if (!CanExtend(y, e)) {
            // A send may be invalid on y only if y already contains the
            // message id; isomorphic-on-P computations share p's events, so
            // this cannot happen for sends from p... report violation.
            out.holds = false;
            out.violation = "part 1 failed at x=" + x.ToString() +
                            " y=" + y.ToString() + " e=" + e.ToString();
            return out;
          }
        }
        // Part 2: e internal or receive, (x;e) [P] y => (y - e) computation.
        if (e.IsInternal() || e.IsReceive()) {
          const Computation xe = x.Extended(e);
          if (IsomorphicWrt(xe, y, p)) {
            ++out.instances_checked;
            // y must contain e (p's projections match); removing it must
            // leave a computation.
            auto events = y.events();
            auto it = std::find(events.begin(), events.end(), e);
            if (it == events.end()) {
              out.holds = false;
              out.violation = "part 2: e missing from y";
              return out;
            }
            events.erase(it);
            try {
              Computation check(std::move(events));
            } catch (const ModelError& err) {
              out.holds = false;
              out.violation = std::string("part 2: (y - e) invalid: ") +
                              err.what();
              return out;
            }
          }
        }
      }
    }
  }
  return out;
}

Theorem3Result CheckTheorem3(const ComputationSpace& space,
                             const Computation& x, const Event& e,
                             ProcessSet p) {
  if (!e.IsOn(p)) throw ModelError("CheckTheorem3: e must be on P");
  Theorem3Result result;
  result.kind = e.kind;
  const ProcessSet pbar = p.ComplementIn(space.AllProcesses());
  const std::vector<ProcessSet> stages{p, pbar};

  const auto before =
      space.ComposedReachable(space.RequireIndex(x), stages);
  const auto after =
      space.ComposedReachable(space.RequireIndex(x.Extended(e)), stages);
  result.before_size = before.size();
  result.after_size = after.size();

  const bool after_subset =
      std::includes(before.begin(), before.end(), after.begin(), after.end());
  const bool before_subset =
      std::includes(after.begin(), after.end(), before.begin(), before.end());
  switch (e.kind) {
    case EventKind::kReceive:
      result.holds = after_subset;
      break;
    case EventKind::kSend:
      result.holds = before_subset;
      break;
    case EventKind::kInternal:
      result.holds = after_subset && before_subset;
      break;
  }
  return result;
}

Theorem4Result CheckTheorem4(KnowledgeEvaluator& eval,
                             const std::vector<ProcessSet>& chain,
                             const Predicate& b, const Computation& x,
                             const Computation& y) {
  if (chain.empty()) throw ModelError("CheckTheorem4: empty chain");
  const ComputationSpace& space = eval.space();
  const std::size_t xid = space.RequireIndex(x);
  const std::size_t yid = space.RequireIndex(y);

  Theorem4Result result;
  const bool nested = eval.Holds(NestedKnows(chain, b), xid);
  const bool path = space.ComposedIsomorphic(xid, yid, chain);
  result.antecedent = nested && path;
  result.consequent =
      eval.Holds(Formula::Knows(chain.back(), Formula::Atom(b)), yid);
  return result;
}

Theorem4Result CheckTheorem4Negative(KnowledgeEvaluator& eval,
                                     const std::vector<ProcessSet>& chain,
                                     const Predicate& b, const Computation& x,
                                     const Computation& y) {
  if (chain.empty()) throw ModelError("CheckTheorem4Negative: empty chain");
  const ComputationSpace& space = eval.space();
  const std::size_t xid = space.RequireIndex(x);
  const std::size_t yid = space.RequireIndex(y);

  // K{P1} ... K{P_{n-1}} !K{Pn} atom(b).
  FormulaPtr inner =
      Formula::Not(Formula::Knows(chain.back(), Formula::Atom(b)));
  std::vector<ProcessSet> outer(chain.begin(), chain.end() - 1);
  const FormulaPtr nested = Formula::KnowsChain(outer, inner);

  Theorem4Result result;
  result.antecedent = eval.Holds(nested, xid) &&
                      space.ComposedIsomorphic(xid, yid, chain);
  result.consequent =
      !eval.Holds(Formula::Knows(chain.back(), Formula::Atom(b)), yid);
  return result;
}

Lemma4Result CheckLemma4(KnowledgeEvaluator& eval, ProcessSet p,
                         const Predicate& b, const Computation& x,
                         const Event& e) {
  if (!e.IsOn(p)) throw ModelError("CheckLemma4: e must be on P");
  Lemma4Result result;
  result.kind = e.kind;
  const FormulaPtr kb = Formula::Knows(p, Formula::Atom(b));
  result.knows_before = eval.Holds(kb, eval.space().RequireIndex(x));
  result.knows_after =
      eval.Holds(kb, eval.space().RequireIndex(x.Extended(e)));
  switch (e.kind) {
    case EventKind::kReceive:  // knowledge is not lost
      result.holds = !result.knows_before || result.knows_after;
      break;
    case EventKind::kSend:  // knowledge is not gained
      result.holds = !result.knows_after || result.knows_before;
      break;
    case EventKind::kInternal:  // neither
      result.holds = result.knows_before == result.knows_after;
      break;
  }
  return result;
}

KnowledgeTransferResult CheckTheorem5(KnowledgeEvaluator& eval,
                                      const std::vector<ProcessSet>& chain,
                                      const Predicate& b,
                                      const Computation& x,
                                      const Computation& y) {
  if (chain.empty()) throw ModelError("CheckTheorem5: empty chain");
  if (!x.IsPrefixOf(y))
    throw ModelError("CheckTheorem5: x must be a prefix of y");
  const ComputationSpace& space = eval.space();

  KnowledgeTransferResult result;
  const bool not_known_at_x = !eval.Holds(
      Formula::Knows(chain.back(), Formula::Atom(b)),
      space.RequireIndex(x));
  const bool nested_at_y =
      eval.Holds(NestedKnows(chain, b), space.RequireIndex(y));
  result.antecedent = not_known_at_x && nested_at_y;

  // Chain <Pn ... P1> in (x, y).
  std::vector<ProcessSet> reversed(chain.rbegin(), chain.rend());
  ChainDetector detector(y, space.num_processes(), x.size());
  result.chain = detector.FindChain(reversed);
  return result;
}

KnowledgeTransferResult CheckTheorem6(KnowledgeEvaluator& eval,
                                      const std::vector<ProcessSet>& chain,
                                      const Predicate& b,
                                      const Computation& x,
                                      const Computation& y) {
  if (chain.empty()) throw ModelError("CheckTheorem6: empty chain");
  if (!x.IsPrefixOf(y))
    throw ModelError("CheckTheorem6: x must be a prefix of y");
  const ComputationSpace& space = eval.space();

  KnowledgeTransferResult result;
  const bool nested_at_x =
      eval.Holds(NestedKnows(chain, b), space.RequireIndex(x));
  const bool not_known_at_y = !eval.Holds(
      Formula::Knows(chain.back(), Formula::Atom(b)),
      space.RequireIndex(y));
  result.antecedent = nested_at_x && not_known_at_y;

  // Chain <P1 ... Pn> in (x, y).
  ChainDetector detector(y, space.num_processes(), x.size());
  result.chain = detector.FindChain(chain);
  return result;
}

namespace {

// K{P1} ... K{P_{n-1}} Sure{Pn} atom(b) — the sure-variant nesting (see
// the header for why only the innermost operator is replaced).
FormulaPtr NestedSure(const std::vector<ProcessSet>& chain,
                      const Predicate& b) {
  FormulaPtr out = Formula::Sure(chain.back(), Formula::Atom(b));
  std::vector<ProcessSet> outer(chain.begin(), chain.end() - 1);
  return Formula::KnowsChain(outer, std::move(out));
}

}  // namespace

KnowledgeTransferResult CheckTheorem5Sure(
    KnowledgeEvaluator& eval, const std::vector<ProcessSet>& chain,
    const Predicate& b, const Computation& x, const Computation& y) {
  if (chain.empty()) throw ModelError("CheckTheorem5Sure: empty chain");
  if (!x.IsPrefixOf(y))
    throw ModelError("CheckTheorem5Sure: x must be a prefix of y");
  const ComputationSpace& space = eval.space();

  KnowledgeTransferResult result;
  const bool not_sure_at_x = !eval.Holds(
      Formula::Sure(chain.back(), Formula::Atom(b)), space.RequireIndex(x));
  const bool nested_at_y =
      eval.Holds(NestedSure(chain, b), space.RequireIndex(y));
  result.antecedent = not_sure_at_x && nested_at_y;

  std::vector<ProcessSet> reversed(chain.rbegin(), chain.rend());
  ChainDetector detector(y, space.num_processes(), x.size());
  result.chain = detector.FindChain(reversed);
  return result;
}

KnowledgeTransferResult CheckTheorem6Sure(
    KnowledgeEvaluator& eval, const std::vector<ProcessSet>& chain,
    const Predicate& b, const Computation& x, const Computation& y) {
  if (chain.empty()) throw ModelError("CheckTheorem6Sure: empty chain");
  if (!x.IsPrefixOf(y))
    throw ModelError("CheckTheorem6Sure: x must be a prefix of y");
  const ComputationSpace& space = eval.space();

  KnowledgeTransferResult result;
  const bool nested_at_x =
      eval.Holds(NestedSure(chain, b), space.RequireIndex(x));
  const bool not_sure_at_y = !eval.Holds(
      Formula::Sure(chain.back(), Formula::Atom(b)), space.RequireIndex(y));
  result.antecedent = nested_at_x && not_sure_at_y;

  ChainDetector detector(y, space.num_processes(), x.size());
  result.chain = detector.FindChain(chain);
  return result;
}

GainLossEventResult CheckGainRequiresReceive(KnowledgeEvaluator& eval,
                                             ProcessSet p, const Predicate& b,
                                             const Computation& x,
                                             const Computation& y) {
  if (!x.IsPrefixOf(y))
    throw ModelError("CheckGainRequiresReceive: x must be a prefix of y");
  const ComputationSpace& space = eval.space();
  const ProcessSet pbar = p.ComplementIn(space.AllProcesses());
  KnowledgeEvaluator& ev = eval;
  if (!ev.IsLocalTo(b, pbar))
    throw ModelError("CheckGainRequiresReceive: b must be local to P̄");

  GainLossEventResult result;
  const FormulaPtr kb = Formula::Knows(p, Formula::Atom(b));
  const bool before = ev.Holds(kb, space.RequireIndex(x));
  const bool after = ev.Holds(kb, space.RequireIndex(y));
  result.antecedent = !before && after;
  for (const Event& e : y.SuffixAfter(x))
    if (e.IsReceive() && e.IsOn(p)) result.event_found = true;
  return result;
}

GainLossEventResult CheckLossRequiresSend(KnowledgeEvaluator& eval,
                                          ProcessSet p, const Predicate& b,
                                          const Computation& x,
                                          const Computation& y) {
  if (!x.IsPrefixOf(y))
    throw ModelError("CheckLossRequiresSend: x must be a prefix of y");
  const ComputationSpace& space = eval.space();
  const ProcessSet pbar = p.ComplementIn(space.AllProcesses());
  if (!eval.IsLocalTo(b, pbar))
    throw ModelError("CheckLossRequiresSend: b must be local to P̄");

  GainLossEventResult result;
  const FormulaPtr kb = Formula::Knows(p, Formula::Atom(b));
  const bool before = eval.Holds(kb, space.RequireIndex(x));
  const bool after = eval.Holds(kb, space.RequireIndex(y));
  result.antecedent = before && !after;
  for (const Event& e : y.SuffixAfter(x))
    if (e.IsSend() && e.IsOn(p)) result.event_found = true;
  return result;
}

}  // namespace hpl
