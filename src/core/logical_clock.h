// Lamport logical clocks (the paper's reference [5]: Lamport, "Time,
// Clocks and the Ordering of Events in a Distributed System", CACM 1978).
//
// Assigns each event of a computation a scalar timestamp satisfying the
// clock condition:  e -> e'  implies  C(e) < C(e')  (for e != e').
// Process chains (Section 3.1) therefore always carry strictly increasing
// timestamps — a cheap necessary condition the chain tests exploit.
#ifndef HPL_CORE_LOGICAL_CLOCK_H_
#define HPL_CORE_LOGICAL_CLOCK_H_

#include <cstdint>
#include <vector>

#include "core/computation.h"

namespace hpl {

class LogicalClockAssignment {
 public:
  LogicalClockAssignment(const Computation& z, int num_processes);

  std::uint64_t TimestampOf(std::size_t event_index) const {
    return stamps_.at(event_index);
  }

  std::size_t num_events() const noexcept { return stamps_.size(); }

  // Total order extension: sorts event indices by (timestamp, process id)
  // — Lamport's "=>" total order.  The result is a valid linearization of
  // the causal partial order.
  std::vector<std::size_t> TotalOrder() const;

  // Verifies the clock condition against the causal relation (test
  // support; O(n^2)).
  bool SatisfiesClockCondition(int num_processes) const;

 private:
  Computation z_;  // by value: assignments outlive caller temporaries
  std::vector<std::uint64_t> stamps_;
  std::vector<ProcessId> procs_;
};

}  // namespace hpl

#endif  // HPL_CORE_LOGICAL_CLOCK_H_
