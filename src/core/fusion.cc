#include "core/fusion.h"

#include "core/isomorphism.h"
#include "core/process_chain.h"

namespace hpl {

Computation FuseLemma1(const Computation& x, const Computation& y,
                       const Computation& z, ProcessSet p, ProcessSet q,
                       int num_processes) {
  const ProcessSet universe = ProcessSet::All(num_processes);
  if (p.Union(q) != universe)
    throw ModelError("FuseLemma1: P u Q must equal D");
  if (!x.IsPrefixOf(y) || !x.IsPrefixOf(z))
    throw ModelError("FuseLemma1: x must be a prefix of y and of z");
  if (!IsomorphicWrt(x, y, p))
    throw ModelError("FuseLemma1: x [P] y must hold");
  if (!IsomorphicWrt(x, z, q))
    throw ModelError("FuseLemma1: x [Q] z must hold");

  // w = x; (x,y); (x,z).  The suffix (x,y) has events only on P̄ and (x,z)
  // only on Q̄; P u Q = D makes them disjoint, so w validates.
  std::vector<Event> events = x.events();
  const auto sy = y.SuffixAfter(x);
  const auto sz = z.SuffixAfter(x);
  events.insert(events.end(), sy.begin(), sy.end());
  events.insert(events.end(), sz.begin(), sz.end());
  return Computation(std::move(events));
}

std::optional<FusionResult> FuseTheorem2(const Computation& x,
                                         const Computation& y,
                                         const Computation& z, ProcessSet p,
                                         int num_processes,
                                         std::string* why) {
  auto fail = [&](const std::string& msg) -> std::optional<FusionResult> {
    if (why != nullptr) *why = msg;
    return std::nullopt;
  };
  const ProcessSet universe = ProcessSet::All(num_processes);
  const ProcessSet pbar = p.ComplementIn(universe);
  if (!x.IsPrefixOf(y) || !x.IsPrefixOf(z))
    throw ModelError("FuseTheorem2: x must be a prefix of y and of z");

  // Precondition (1): no chain <P̄ P> in (x, y) — P's suffix events in y
  // must not depend on P̄'s suffix events, so "all events on P from y" can
  // run without P̄'s suffix.
  {
    ChainDetector detector(y, num_processes, x.size());
    if (detector.HasChain({pbar, p}))
      return fail("chain <P̄ P> present in (x,y)");
  }
  // Precondition (2): no chain <P P̄> in (x, z).
  {
    ChainDetector detector(z, num_processes, x.size());
    if (detector.HasChain({p, pbar}))
      return fail("chain <P P̄> present in (x,z)");
  }

  // Diagram intermediates (proof of Theorem 2 via Theorem 1 + Lemma 1):
  //   u = x; (x,y)|P   — x [P̄] u and u [P] y
  //   v = x; (x,z)|P̄   — x [P] v and v [P̄] z
  std::vector<Event> ue = x.events();
  for (const Event& e : y.SuffixAfter(x))
    if (e.IsOn(p)) ue.push_back(e);
  std::vector<Event> ve = x.events();
  for (const Event& e : z.SuffixAfter(x))
    if (e.IsOn(pbar)) ve.push_back(e);

  // Both validate because the absent chains guarantee every receive kept
  // has its send kept (a cross-set message inside the suffix would be a
  // forbidden chain).
  Computation u(std::move(ue));
  Computation v(std::move(ve));

  // Lemma 1 applied to x, u, v with (P := P̄, Q := P): x [P̄] u, x [P] v.
  Computation w = FuseLemma1(x, u, v, pbar, p, num_processes);

  FusionResult result{std::move(w), std::move(u), std::move(v)};
  return result;
}

}  // namespace hpl
