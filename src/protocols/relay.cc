#include "protocols/relay.h"

namespace hpl::protocols {

RelaySystem::RelaySystem(int num_processes) : num_processes_(num_processes) {
  if (num_processes < 2)
    throw hpl::ModelError("RelaySystem: need at least 2 processes");
}

std::vector<hpl::Event> RelaySystem::EnabledEvents(
    const hpl::Computation& x) const {
  // Scripts: p0: internal "fact"; then send m0 to p1.
  //          p_i (0<i<n-1): after receiving m_{i-1}, send m_i to p_{i+1}.
  //          p_{n-1}: only receives.
  std::vector<hpl::Event> out;

  // p0's progress.
  int p0_steps = 0;
  for (const hpl::Event& e : x.events())
    if (e.process == 0) ++p0_steps;
  if (p0_steps == 0) {
    out.push_back(hpl::Internal(0, "fact"));
  } else if (p0_steps == 1 && num_processes_ >= 2) {
    out.push_back(hpl::Send(0, 1, /*m=*/0, "relay"));
  }

  // Relays and receives.
  for (const hpl::Event& e : x.events()) {
    if (!e.IsSend()) continue;
    hpl::Event recv = hpl::Receive(e.peer, e.process, e.message, e.label);
    if (hpl::CanExtend(x, recv)) out.push_back(recv);
  }
  for (hpl::ProcessId i = 1; i < num_processes_ - 1; ++i) {
    // p_i forwards once it has received and has not yet forwarded.
    bool received = false, forwarded = false;
    for (const hpl::Event& e : x.events()) {
      if (e.process == i && e.IsReceive()) received = true;
      if (e.process == i && e.IsSend()) forwarded = true;
    }
    if (received && !forwarded)
      out.push_back(hpl::Send(i, i + 1, /*m=*/i, "relay"));
  }
  return out;
}

std::string RelaySystem::Name() const {
  return "relay(n=" + std::to_string(num_processes_) + ")";
}

hpl::Predicate RelaySystem::Fact() const {
  return hpl::Predicate("fact", [](const hpl::Computation& x) {
    for (const hpl::Event& e : x.events())
      if (e.process == 0 && e.IsInternal() && e.label == "fact") return true;
    return false;
  });
}

std::vector<hpl::ProcessSet> RelaySystem::NestedChain(int hops) const {
  if (hops < 0 || hops >= num_processes_)
    throw hpl::ModelError("RelaySystem::NestedChain: bad hop count");
  std::vector<hpl::ProcessSet> chain;
  for (hpl::ProcessId p = static_cast<hpl::ProcessId>(hops); p >= 0; --p)
    chain.push_back(hpl::ProcessSet::Of(p));
  return chain;
}

}  // namespace hpl::protocols
