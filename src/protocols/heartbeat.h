// Failure detection (paper Section 5).
//
// "Traditional techniques for process failure detection based on time-outs
// assume certain execution speeds ... detection of failure is impossible
// without using time-outs" — because a crash is local to the crashed
// process and a crashed process sends nothing, every computation with a
// crash is isomorphic, w.r.t. any observer, to one where the process is
// merely slow.
//
// The simulation side: a monitored process emits heartbeats until it
// (possibly) crashes; a monitor either uses a timeout (suspects after D
// silent ticks) or uses none (suspects only on positive evidence, of which
// there is none).  Scenarios pit a real crash against a slow-but-alive
// process, measuring detection latency and false suspicion — the tradeoff
// the paper proves unavoidable.
#ifndef HPL_PROTOCOLS_HEARTBEAT_H_
#define HPL_PROTOCOLS_HEARTBEAT_H_

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace hpl::protocols {

// Timeout-on-silence failure detection, factored out for reuse: the
// consensus actors (consensus.h) embed one per process.  The detector is
// eventually-strong in spirit (◇S): suspicions can be wrong and are revised
// whenever the suspect shows any sign of life, which is exactly what the
// paper's Section-5 argument permits — silence is the only evidence a
// timeout can act on.
class SilenceDetector {
 public:
  SilenceDetector(int num_processes, hpl::sim::Time timeout);

  // Any message from p counts as a sign of life.
  void HeardFrom(hpl::ProcessId p, hpl::sim::Time now);
  // p has been silent for at least `timeout` ticks.
  bool Suspects(hpl::ProcessId p, hpl::sim::Time now) const;
  hpl::ProcessSet Suspected(hpl::sim::Time now) const;

  hpl::sim::Time timeout() const noexcept { return timeout_; }

 private:
  std::vector<hpl::sim::Time> last_heard_;
  hpl::sim::Time timeout_;
};

struct HeartbeatScenario {
  // Monitored process behaviour.
  hpl::sim::Time heartbeat_interval = 10;
  hpl::sim::Time crash_at = -1;   // -1: never crashes
  hpl::sim::Time run_until = 600; // monitor stops checking afterwards
  // Monitor behaviour.
  hpl::sim::Time timeout = -1;    // -1: no timeout (pure message evidence)
  // Network.
  hpl::sim::NetworkOptions network;
  std::uint64_t seed = 1;
};

struct HeartbeatResult {
  bool crashed = false;          // ground truth
  bool suspected = false;        // monitor verdict
  hpl::sim::Time suspect_time = -1;
  // Time of the actual crash event in the trace (the first heartbeat tick
  // at or after crash_at), -1 if the process never crashed.
  hpl::sim::Time crash_time = -1;
  bool false_suspicion = false;  // suspected while alive
  hpl::sim::Time detection_latency = -1;  // suspect_time - crash_time
  std::size_t heartbeats_received = 0;
};

HeartbeatResult RunHeartbeatScenario(const HeartbeatScenario& scenario);

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_HEARTBEAT_H_
