#include "protocols/dijkstra_scholten.h"

namespace hpl::protocols {

using hpl::sim::Context;
using hpl::sim::Message;
using hpl::sim::MessageClass;

DijkstraScholtenActor::DijkstraScholtenActor(bool root,
                                             WorkloadStatePtr workload)
    : root_(root), workload_(std::move(workload)) {
  if (!workload_) throw hpl::ModelError("DijkstraScholtenActor: no workload");
}

void DijkstraScholtenActor::OnStart(Context& ctx) {
  if (!root_) return;
  engaged_ = true;
  Activate(ctx);
  TryDetach(ctx);
}

void DijkstraScholtenActor::Activate(Context& ctx) {
  // One activation: emit workload sends and immediately become passive
  // (activations are instantaneous in this model).
  for (hpl::ProcessId to :
       DrawActivationSends(*workload_, ctx.Self(), ctx.NumProcesses())) {
    ctx.Send(to, MessageClass::kUnderlying, "work");
    ++deficit_;
  }
}

void DijkstraScholtenActor::TryDetach(Context& ctx) {
  if (deficit_ != 0) return;  // children still engaged
  if (root_) {
    if (!announced_) {
      announced_ = true;
      announce_time_ = ctx.Now();
      ctx.Internal("announce_termination");
      ctx.HaltSimulation("dijkstra-scholten: termination detected");
    }
    return;
  }
  if (engaged_) {
    engaged_ = false;
    ctx.Send(parent_, MessageClass::kOverhead, "ack");
    parent_ = hpl::kNoProcess;
  }
}

void DijkstraScholtenActor::OnMessage(Context& ctx, const Message& msg) {
  if (msg.type == "work") {
    const bool engaging = !engaged_ && !root_;
    if (engaging) {
      engaged_ = true;
      parent_ = msg.from;
    }
    Activate(ctx);
    if (!engaging) {
      // Non-engaging work is acked immediately.
      ctx.Send(msg.from, MessageClass::kOverhead, "ack");
    }
    TryDetach(ctx);
  } else if (msg.type == "ack") {
    if (deficit_ <= 0)
      throw hpl::ModelError("DS: ack without outstanding message");
    --deficit_;
    TryDetach(ctx);
  } else {
    throw hpl::ModelError("DS: unexpected message type " + msg.type);
  }
}

}  // namespace hpl::protocols
