// Safra's token-based termination detection (ring probe with counters and
// colors), run over the same diffusing workload as Dijkstra–Scholten.
//
// Each process keeps a message counter (underlying sends minus receives)
// and a color; receiving an underlying message blackens the receiver.  The
// root circulates a token accumulating counters and color; a probe round
// succeeds when the root is white, the token is white and the global count
// is zero.  Unsuccessful rounds retry after a delay.  Overhead = token
// hops: n per round, with the number of rounds driven by how often
// underlying traffic invalidates a probe — the experiment's point of
// comparison against the paper's lower bound.
#ifndef HPL_PROTOCOLS_SAFRA_H_
#define HPL_PROTOCOLS_SAFRA_H_

#include "protocols/workload.h"
#include "sim/actor.h"

namespace hpl::protocols {

struct SafraOptions {
  hpl::sim::Time probe_interval = 50;  // delay before the root re-probes
};

class SafraActor : public hpl::sim::Actor {
 public:
  SafraActor(bool root, WorkloadStatePtr workload, SafraOptions options = {});

  void OnStart(hpl::sim::Context& ctx) override;
  void OnMessage(hpl::sim::Context& ctx, const hpl::sim::Message& msg) override;
  void OnTimer(hpl::sim::Context& ctx, hpl::sim::TimerId timer) override;

  bool announced() const noexcept { return announced_; }
  hpl::sim::Time announce_time() const noexcept { return announce_time_; }
  int probe_rounds() const noexcept { return rounds_; }

 private:
  void Activate(hpl::sim::Context& ctx);
  void LaunchToken(hpl::sim::Context& ctx);
  void ForwardToken(hpl::sim::Context& ctx, std::int64_t q, bool black);

  bool root_;
  WorkloadStatePtr workload_;
  SafraOptions options_;
  std::int64_t counter_ = 0;  // underlying sends - receives
  bool black_ = false;
  bool announced_ = false;
  hpl::sim::Time announce_time_ = -1;
  int rounds_ = 0;
};

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_SAFRA_H_
