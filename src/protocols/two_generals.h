// Two generals / coordinated attack — the classic common-knowledge
// impossibility, here as a corollary of the paper's Section 4.2: common
// knowledge is constant in asynchronous systems, so no finite exchange of
// acknowledgements creates it.
//
// Model: general A (p0) sends "attack"; the generals then acknowledge back
// and forth, each message possibly the last (messages may remain in
// flight forever).  TwoGeneralsSystem enumerates every computation with up
// to `max_messages` messages.  The tests and example show:
//   - after k delivered messages, E^k("attack was ordered") holds for the
//     pair but E^{k+1} does not — each ack climbs exactly one level;
//   - CK("attack was ordered") holds nowhere (it is the constant false),
//     so simultaneous-attack agreement is unreachable — the generals'
//     paradox, machine-checked.
#ifndef HPL_PROTOCOLS_TWO_GENERALS_H_
#define HPL_PROTOCOLS_TWO_GENERALS_H_

#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/system.h"

namespace hpl::protocols {

class TwoGeneralsSystem : public hpl::System {
 public:
  explicit TwoGeneralsSystem(int max_messages);

  int NumProcesses() const override { return 2; }
  std::vector<hpl::Event> EnabledEvents(
      const hpl::Computation& x) const override;
  std::string Name() const override;

  // "The attack order was sent" — local to A.
  hpl::Predicate Ordered() const;

  // The canonical run with exactly k messages delivered (alternating
  // order/acks), the last delivery included.
  hpl::Computation DeliveredRun(int k) const;

 private:
  int max_messages_;
};

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_TWO_GENERALS_H_
