#include "protocols/workload.h"

#include <algorithm>

namespace hpl::protocols {

std::vector<hpl::ProcessId> DrawActivationSends(WorkloadState& state,
                                                hpl::ProcessId self, int n) {
  std::vector<hpl::ProcessId> out;
  if (n < 2 || state.remaining <= 0) return out;
  // The very first activation (the root's kick-off) always sends when the
  // budget allows, so a configured workload is never trivially empty.
  const bool first = state.remaining == state.options.budget;
  if (!first && state.rng.Chance(state.options.fanout_zero_prob)) return out;
  const int k = static_cast<int>(state.rng.Between(
      1, std::min(state.options.fanout_max, state.remaining)));
  for (int i = 0; i < k; ++i) {
    auto to = static_cast<hpl::ProcessId>(state.rng.Below(n - 1));
    if (to >= self) ++to;
    out.push_back(to);
  }
  state.remaining -= k;
  return out;
}

}  // namespace hpl::protocols
