#include "protocols/gossip.h"

#include <memory>

#include "sim/rng.h"

namespace hpl::protocols {

using hpl::sim::Context;
using hpl::sim::Message;
using hpl::sim::MessageClass;
using hpl::sim::Time;
using hpl::sim::TimerId;

namespace {

class GossipActor : public hpl::sim::Actor {
 public:
  GossipActor(const GossipScenario& scenario, bool origin)
      : scenario_(scenario),
        origin_(origin),
        rng_(scenario.seed * 2654435761u + (origin ? 7 : 11)) {}

  void OnStart(Context& ctx) override {
    if (origin_) {
      infected_ = true;
      ctx.Internal("fact");
      ctx.SetTimer(1);
    }
  }

  void OnTimer(Context& ctx, TimerId) override {
    if (!infected_ || pulses_ >= scenario_.max_pulses) return;
    ++pulses_;
    for (int i = 0; i < scenario_.fanout; ++i) {
      if (ctx.NumProcesses() < 2) break;
      auto to = static_cast<hpl::ProcessId>(
          rng_.Below(ctx.NumProcesses() - 1));
      if (to >= ctx.Self()) ++to;
      ctx.Send(to, MessageClass::kUnderlying, "rumor");
    }
    // Stop pulsing once the whole system is plausibly covered; the safety
    // bound max_pulses prevents infinite chatter either way.
    ctx.SetTimer(scenario_.pulse_interval);
  }

  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type != "rumor")
      throw hpl::ModelError("gossip: unexpected message " + msg.type);
    if (!infected_) {
      infected_ = true;
      infected_at_ = ctx.Now();
      ctx.SetTimer(1);
    }
  }

  bool infected() const noexcept { return infected_; }
  Time infected_at() const noexcept { return infected_at_; }

 private:
  GossipScenario scenario_;
  bool origin_;
  hpl::sim::Rng rng_;
  bool infected_ = false;
  Time infected_at_ = 0;
  int pulses_ = 0;
};

}  // namespace

GossipResult RunGossipScenario(const GossipScenario& scenario) {
  std::vector<std::unique_ptr<hpl::sim::Actor>> actors;
  std::vector<const GossipActor*> ptrs;
  for (int p = 0; p < scenario.num_processes; ++p) {
    auto actor = std::make_unique<GossipActor>(scenario, p == 0);
    ptrs.push_back(actor.get());
    actors.push_back(std::move(actor));
  }
  hpl::sim::SimulatorOptions options;
  options.network = scenario.network;
  options.seed = scenario.seed;
  options.max_steps = 200'000;
  hpl::sim::Simulator sim(std::move(actors), options);
  sim.Run();

  GossipResult result;
  result.trace = sim.trace().ToComputation();
  result.messages = sim.trace().CountSends(MessageClass::kUnderlying);
  result.everyone_infected = true;
  for (const auto* actor : ptrs) {
    if (!actor->infected()) result.everyone_infected = false;
    result.spread_time = std::max(result.spread_time, actor->infected_at());
  }

  // Locate the fact event and compute knowledge times from the trace.
  std::size_t fact_index = 0;
  bool found = false;
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    if (result.trace.at(i).IsInternal() &&
        result.trace.at(i).label == "fact") {
      fact_index = i;
      found = true;
      break;
    }
  }
  if (!found) throw hpl::ModelError("gossip: no fact event recorded");

  CausalKnowledge cone(result.trace, scenario.num_processes, fact_index);
  result.knowledge_prefix.assign(scenario.num_processes, SIZE_MAX);
  result.knowledge_time.assign(scenario.num_processes, -1);
  const auto& entries = sim.trace().entries();
  for (hpl::ProcessId p = 0; p < scenario.num_processes; ++p) {
    const auto at = cone.EarliestKnowledge(hpl::ProcessSet::Of(p));
    if (at.has_value()) {
      result.knowledge_prefix[p] = *at;
      result.knowledge_time[p] = entries[*at - 1].time;
    }
  }

  // Infection (protocol state) must equal knowledge (causal cone): a
  // process is infected exactly when it has received a rumor causally
  // rooted at the fact.
  result.infection_equals_knowledge = true;
  for (int p = 0; p < scenario.num_processes; ++p) {
    const bool knows = result.knowledge_prefix[p] != SIZE_MAX;
    if (knows != ptrs[p]->infected())
      result.infection_equals_knowledge = false;
  }
  return result;
}

}  // namespace hpl::protocols
