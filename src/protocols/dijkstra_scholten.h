// Dijkstra–Scholten termination detection over a diffusing computation.
//
// Every work message is eventually acknowledged; a process detaches (acks
// its engaging message) once it is passive and all of its own messages are
// acked.  The root announces termination when it is passive with no
// outstanding acks.  Overhead is exactly one ack per underlying message —
// the algorithm meets the paper's Section-5 lower bound ("at least as many
// overhead messages as there are messages in the underlying computation")
// with equality.
#ifndef HPL_PROTOCOLS_DIJKSTRA_SCHOLTEN_H_
#define HPL_PROTOCOLS_DIJKSTRA_SCHOLTEN_H_

#include "protocols/workload.h"
#include "sim/actor.h"

namespace hpl::protocols {

class DijkstraScholtenActor : public hpl::sim::Actor {
 public:
  // `root` processes self-activate at start.
  DijkstraScholtenActor(bool root, WorkloadStatePtr workload);

  void OnStart(hpl::sim::Context& ctx) override;
  void OnMessage(hpl::sim::Context& ctx, const hpl::sim::Message& msg) override;

  bool announced() const noexcept { return announced_; }
  hpl::sim::Time announce_time() const noexcept { return announce_time_; }

 private:
  void Activate(hpl::sim::Context& ctx);
  void TryDetach(hpl::sim::Context& ctx);

  bool root_;
  WorkloadStatePtr workload_;
  int deficit_ = 0;                 // my sent-but-unacked work messages
  bool engaged_ = false;            // in the DS tree (root: always)
  hpl::ProcessId parent_ = hpl::kNoProcess;
  bool announced_ = false;
  hpl::sim::Time announce_time_ = -1;
};

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_DIJKSTRA_SCHOLTEN_H_
