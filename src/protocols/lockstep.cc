#include "protocols/lockstep.h"

namespace hpl::protocols {

namespace {
constexpr hpl::ProcessId kP = 0;
constexpr hpl::ProcessId kQ = 1;
}  // namespace

LockstepSystem::LockstepSystem(int rounds) : rounds_(rounds) {
  if (rounds < 1) throw hpl::ModelError("LockstepSystem: need >= 1 round");
}

LockstepSystem::State LockstepSystem::Reconstruct(
    const hpl::Computation& x) const {
  State s;
  for (const hpl::Event& e : x.events()) {
    if (e.process == kQ && e.IsInternal() && e.label == "crash") {
      s.crashed = true;
      continue;  // crash is instantaneous, not a round phase
    }
    switch (s.phase) {
      case 0:  // q acts: heartbeat send or silent marker
        s.sent_this_round = e.IsSend();
        s.phase = e.IsSend() ? 1 : 2;
        break;
      case 1:  // delivery
        s.phase = 2;
        break;
      case 2:  // p's tick
        s.phase = 3;
        break;
      case 3:  // q's tick closes the round
        s.phase = 0;
        ++s.round;
        break;
    }
  }
  return s;
}

std::vector<hpl::Event> LockstepSystem::EnabledEvents(
    const hpl::Computation& x) const {
  const State s = Reconstruct(x);
  std::vector<hpl::Event> out;
  if (s.round >= rounds_) return out;
  const auto m = static_cast<hpl::MessageId>(s.round);
  switch (s.phase) {
    case 0: {
      // q acts.  Alive: send heartbeat.  May also crash right now (if not
      // already crashed); once crashed, stay silent.
      if (!s.crashed) {
        out.push_back(hpl::Send(kQ, kP, m, "hb"));
        out.push_back(hpl::Internal(kQ, "crash"));
      } else {
        out.push_back(hpl::Internal(kQ, "silent"));
      }
      break;
    }
    case 1:
      out.push_back(hpl::Receive(kP, kQ, m, "hb"));
      break;
    case 2:
      out.push_back(
          hpl::Internal(kP, "tick" + std::to_string(s.round)));
      break;
    case 3:
      out.push_back(
          hpl::Internal(kQ, "qtick" + std::to_string(s.round)));
      break;
  }
  return out;
}

std::string LockstepSystem::Name() const {
  return "lockstep(rounds=" + std::to_string(rounds_) + ")";
}

hpl::Predicate LockstepSystem::Crashed() const {
  return hpl::Predicate("crashed", [](const hpl::Computation& x) {
    for (const hpl::Event& e : x.events())
      if (e.process == kQ && e.IsInternal() && e.label == "crash")
        return true;
    return false;
  });
}

int LockstepSystem::CompletedRounds(const hpl::Computation& x) const {
  return Reconstruct(x).round;
}

hpl::Computation LockstepSystem::AliveRun(int rounds) const {
  hpl::Computation x;
  for (int r = 0; r < rounds; ++r) {
    x = x.Extended(hpl::Send(kQ, kP, r, "hb"));
    x = x.Extended(hpl::Receive(kP, kQ, r, "hb"));
    x = x.Extended(hpl::Internal(kP, "tick" + std::to_string(r)));
    x = x.Extended(hpl::Internal(kQ, "qtick" + std::to_string(r)));
  }
  return x;
}

hpl::Computation LockstepSystem::CrashedRun(int crash_round,
                                            int total_rounds) const {
  hpl::Computation x;
  for (int r = 0; r < total_rounds; ++r) {
    if (r == crash_round) x = x.Extended(hpl::Internal(kQ, "crash"));
    if (r < crash_round) {
      x = x.Extended(hpl::Send(kQ, kP, r, "hb"));
      x = x.Extended(hpl::Receive(kP, kQ, r, "hb"));
    } else {
      x = x.Extended(hpl::Internal(kQ, "silent"));
    }
    x = x.Extended(hpl::Internal(kP, "tick" + std::to_string(r)));
    x = x.Extended(hpl::Internal(kQ, "qtick" + std::to_string(r)));
  }
  return x;
}

}  // namespace hpl::protocols
