#include "protocols/tracker.h"

#include <memory>

namespace hpl::protocols {

namespace {
constexpr hpl::ProcessId kP = 0;
constexpr hpl::ProcessId kQ = 1;
}  // namespace

TrackerSystem::TrackerSystem(int num_flips) : num_flips_(num_flips) {
  if (num_flips < 0) throw hpl::ModelError("TrackerSystem: negative flips");
}

std::vector<hpl::Event> TrackerSystem::EnabledEvents(
    const hpl::Computation& x) const {
  // q alternates: flip #k, then send notify #k to p.  p receives whenever a
  // notify is in flight.  q's script length = 2 * num_flips_.
  int q_steps = 0;  // q's non-receive events (q never receives here)
  for (const hpl::Event& e : x.events())
    if (e.process == kQ) ++q_steps;

  std::vector<hpl::Event> out;
  if (q_steps < 2 * num_flips_) {
    if (q_steps % 2 == 0) {
      out.push_back(hpl::Internal(kQ, "flip"));
    } else {
      const hpl::MessageId m = q_steps / 2;
      out.push_back(hpl::Send(kQ, kP, m, "notify"));
    }
  }
  for (const hpl::Event& e : x.events()) {
    if (!e.IsSend()) continue;
    hpl::Event recv = hpl::Receive(kP, kQ, e.message, e.label);
    if (hpl::CanExtend(x, recv)) out.push_back(recv);
  }
  return out;
}

std::string TrackerSystem::Name() const {
  return "tracker(flips=" + std::to_string(num_flips_) + ")";
}

hpl::Predicate TrackerSystem::Bit() const {
  return hpl::Predicate("bit", [](const hpl::Computation& x) {
    int flips = 0;
    for (const hpl::Event& e : x.events())
      if (e.process == kQ && e.IsInternal() && e.label == "flip") ++flips;
    return flips % 2 == 1;
  });
}

bool TrackerSystem::CanStillChange(const hpl::Computation& x) const {
  int flips = 0;
  for (const hpl::Event& e : x.events())
    if (e.process == kQ && e.IsInternal() && e.label == "flip") ++flips;
  return flips < num_flips_;
}

// ---------------------------------------------------------------------------
// Simulation scenario.
// ---------------------------------------------------------------------------
namespace {

using hpl::sim::Context;
using hpl::sim::Message;
using hpl::sim::MessageClass;
using hpl::sim::Time;

struct SharedTruth {
  // (time, value) history of q's bit, and of p's belief.
  std::vector<std::pair<Time, bool>> actual{{0, false}};
  std::vector<std::pair<Time, bool>> believed{{0, false}};
  Time end_time = 0;
};

class FlippingActor : public hpl::sim::Actor {
 public:
  FlippingActor(const TrackingScenario& s, std::shared_ptr<SharedTruth> truth)
      : scenario_(s), truth_(std::move(truth)) {}

  void OnStart(Context& ctx) override {
    ctx.SetTimer(scenario_.flip_interval);
  }

  void OnTimer(Context& ctx, hpl::sim::TimerId) override {
    if (done_ >= scenario_.num_flips) return;
    bit_ = !bit_;
    ++done_;
    ctx.Internal("flip");
    truth_->actual.emplace_back(ctx.Now(), bit_);
    ctx.Send(kP, MessageClass::kUnderlying, "notify", bit_ ? 1 : 0);
    if (done_ < scenario_.num_flips) ctx.SetTimer(scenario_.flip_interval);
  }

  void OnMessage(Context&, const Message&) override {}

 private:
  TrackingScenario scenario_;
  std::shared_ptr<SharedTruth> truth_;
  bool bit_ = false;
  int done_ = 0;
};

class BelievingActor : public hpl::sim::Actor {
 public:
  explicit BelievingActor(std::shared_ptr<SharedTruth> truth)
      : truth_(std::move(truth)) {}

  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type != "notify") return;
    truth_->believed.emplace_back(ctx.Now(), msg.a != 0);
    ++notifications_;
  }

  std::size_t notifications() const noexcept { return notifications_; }

 private:
  std::shared_ptr<SharedTruth> truth_;
  std::size_t notifications_ = 0;
};

bool ValueAt(const std::vector<std::pair<Time, bool>>& history, Time t) {
  bool v = false;
  for (const auto& [at, val] : history) {
    if (at > t) break;
    v = val;
  }
  return v;
}

}  // namespace

TrackingResult RunTrackingScenario(const TrackingScenario& scenario) {
  auto truth = std::make_shared<SharedTruth>();
  std::vector<std::unique_ptr<hpl::sim::Actor>> actors;
  auto believer = std::make_unique<BelievingActor>(truth);
  const BelievingActor* believer_ptr = believer.get();
  actors.push_back(std::move(believer));       // p = 0
  actors.push_back(std::make_unique<FlippingActor>(scenario, truth));  // q = 1

  hpl::sim::SimulatorOptions options;
  options.network = scenario.network;
  options.seed = scenario.seed;
  hpl::sim::Simulator sim(std::move(actors), options);
  const auto stats = sim.Run();
  truth->end_time = stats.end_time;

  TrackingResult result;
  result.flips = scenario.num_flips;
  result.notifications = believer_ptr->notifications();
  result.total_time = truth->end_time;
  // Integrate |actual - believed| over time on the merged change points.
  std::vector<Time> points{0, truth->end_time};
  for (const auto& [t, v] : truth->actual) points.push_back(t);
  for (const auto& [t, v] : truth->believed) points.push_back(t);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    if (ValueAt(truth->actual, points[i]) !=
        ValueAt(truth->believed, points[i]))
      result.stale_time += points[i + 1] - points[i];
  }
  result.stale_fraction =
      result.total_time > 0
          ? static_cast<double>(result.stale_time) /
                static_cast<double>(result.total_time)
          : 0.0;
  return result;
}

}  // namespace hpl::protocols
