// Chandy–Lamport global snapshots over the simulator.
//
// The paper's opening problem — "a process determine facts about the
// overall system computation" — is exactly what a snapshot algorithm
// solves operationally: it assembles a *consistent cut*, i.e. a prefix-
// closed-under-causality set of events, equivalently a computation x with
// x [D]-reachable between what happened and what will happen.  This
// module runs the classic marker algorithm on top of a counting workload
// and exposes the recorded cut for validation against the formal model:
// the cut must be left-closed under Lamport's happened-before (no event in
// the cut may causally depend on one outside it).
#ifndef HPL_PROTOCOLS_SNAPSHOT_H_
#define HPL_PROTOCOLS_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "core/computation.h"
#include "sim/simulator.h"

namespace hpl::protocols {

struct SnapshotScenario {
  int num_processes = 4;
  // Workload: each process keeps a counter and keeps sending "incr"
  // messages to random peers until `messages_per_process` are sent.
  int messages_per_process = 5;
  // The initiator starts the snapshot after this delay.
  hpl::sim::Time snapshot_at = 30;
  hpl::sim::NetworkOptions network;  // FIFO is forced on (marker rule)
  std::uint64_t seed = 1;
};

struct SnapshotResult {
  bool completed = false;          // all processes recorded
  std::size_t marker_messages = 0; // overhead: one marker per channel edge
  // Recorded local counters (the "state") per process.
  std::vector<std::int64_t> recorded_counters;
  // Messages recorded as in-channel by the snapshot.
  std::size_t recorded_in_flight = 0;
  // Sum of recorded counters + in-flight increments: must equal the number
  // of increments "before" the cut — consistency makes it a well-defined
  // global total.
  std::int64_t recorded_total = 0;
  // The cut: for each process, how many of its events are inside.
  std::vector<std::size_t> cut_sizes;
  // Validation against the formal model (computed from the trace):
  bool cut_consistent = false;  // left-closed under happened-before
  hpl::Computation trace;       // the full run
};

SnapshotResult RunSnapshotScenario(const SnapshotScenario& scenario);

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_SNAPSHOT_H_
