#include "protocols/snapshot.h"

#include <memory>
#include <unordered_map>

#include "core/causality.h"
#include "sim/rng.h"

namespace hpl::protocols {

using hpl::sim::Context;
using hpl::sim::Message;
using hpl::sim::MessageClass;
using hpl::sim::Time;
using hpl::sim::TimerId;

namespace {

// Counter workload + Chandy-Lamport marker layer in one actor.
class SnapshotActor : public hpl::sim::Actor {
 public:
  SnapshotActor(const SnapshotScenario& scenario, bool initiator)
      : scenario_(scenario),
        initiator_(initiator),
        rng_(scenario.seed * 1315423911u + (initiator ? 1 : 0)) {}

  void OnStart(Context& ctx) override {
    marker_seen_.assign(ctx.NumProcesses(), false);
    recorded_from_.assign(ctx.NumProcesses(), 0);
    work_timer_ = ctx.SetTimer(1 + static_cast<Time>(rng_.Below(5)));
    if (initiator_) snapshot_timer_ = ctx.SetTimer(scenario_.snapshot_at);
  }

  void OnTimer(Context& ctx, TimerId timer) override {
    if (timer == snapshot_timer_) {
      StartRecording(ctx, /*trigger_channel=*/-1);
      return;
    }
    // Work pulse: send one increment to a random peer.
    if (sent_ < scenario_.messages_per_process && ctx.NumProcesses() > 1) {
      auto to = static_cast<hpl::ProcessId>(
          rng_.Below(ctx.NumProcesses() - 1));
      if (to >= ctx.Self()) ++to;
      ctx.Send(to, MessageClass::kUnderlying, "incr", 1);
      ++sent_;
      work_timer_ = ctx.SetTimer(1 + static_cast<Time>(rng_.Below(7)));
    }
  }

  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type == "incr") {
      counter_ += msg.a;
      // Channel recording: between our state record and the marker on the
      // sender's channel, in-transit increments belong to the channel.
      if (recorded_ && !marker_seen_[msg.from])
        recorded_from_[msg.from] += msg.a;
      return;
    }
    if (msg.type != "marker")
      throw hpl::ModelError("snapshot: unexpected message " + msg.type);
    if (!recorded_) StartRecording(ctx, msg.from);
    marker_seen_[msg.from] = true;
  }

  void StartRecording(Context& ctx, int trigger_channel) {
    if (recorded_) return;
    recorded_ = true;
    recorded_counter_ = counter_;
    ctx.Internal("record_state");
    // The triggering channel is recorded empty (its marker flushed it).
    if (trigger_channel >= 0) marker_seen_[trigger_channel] = true;
    for (hpl::ProcessId p = 0; p < ctx.NumProcesses(); ++p)
      if (p != ctx.Self())
        ctx.Send(p, MessageClass::kOverhead, "marker");
  }

  bool recorded() const noexcept { return recorded_; }
  std::int64_t recorded_counter() const noexcept { return recorded_counter_; }
  std::int64_t recorded_in_flight() const {
    std::int64_t total = 0;
    for (std::int64_t v : recorded_from_) total += v;
    return total;
  }
  bool AllMarkersSeen(int n, int self) const {
    if (!recorded_) return false;
    for (int p = 0; p < n; ++p)
      if (p != self && !marker_seen_[p]) return false;
    return true;
  }

 private:
  SnapshotScenario scenario_;
  bool initiator_;
  hpl::sim::Rng rng_;
  std::int64_t counter_ = 0;
  int sent_ = 0;
  bool recorded_ = false;
  std::int64_t recorded_counter_ = 0;
  std::vector<bool> marker_seen_;
  std::vector<std::int64_t> recorded_from_;
  TimerId work_timer_ = -1;
  TimerId snapshot_timer_ = -999;
};

}  // namespace

SnapshotResult RunSnapshotScenario(const SnapshotScenario& scenario) {
  std::vector<std::unique_ptr<hpl::sim::Actor>> actors;
  std::vector<const SnapshotActor*> ptrs;
  for (int p = 0; p < scenario.num_processes; ++p) {
    auto actor = std::make_unique<SnapshotActor>(scenario, p == 0);
    ptrs.push_back(actor.get());
    actors.push_back(std::move(actor));
  }
  hpl::sim::SimulatorOptions options;
  options.network = scenario.network;
  options.network.fifo = true;  // the marker rule requires FIFO channels
  options.seed = scenario.seed;
  hpl::sim::Simulator sim(std::move(actors), options);
  sim.Run();

  SnapshotResult result;
  result.trace = sim.trace().ToComputation();
  result.marker_messages = sim.trace().CountSends(MessageClass::kOverhead);

  result.completed = true;
  for (int p = 0; p < scenario.num_processes; ++p) {
    if (!ptrs[p]->AllMarkersSeen(scenario.num_processes, p))
      result.completed = false;
    result.recorded_counters.push_back(ptrs[p]->recorded_counter());
    result.recorded_in_flight +=
        static_cast<std::size_t>(ptrs[p]->recorded_in_flight());
    result.recorded_total +=
        ptrs[p]->recorded_counter() + ptrs[p]->recorded_in_flight();
  }

  // --- Validate the cut against the formal model. -------------------------
  // The cut contains, for each process, its *underlying* events up to its
  // "record_state" internal event.  Consistency: the cut is left-closed
  // under happened-before restricted to underlying events.
  const auto& entries = sim.trace().entries();
  const std::size_t n_events = entries.size();
  std::vector<bool> in_cut(n_events, false);
  std::vector<bool> recorded_yet(scenario.num_processes, false);
  result.cut_sizes.assign(scenario.num_processes, 0);
  for (std::size_t i = 0; i < n_events; ++i) {
    const Event& e = entries[i].event;
    if (e.IsInternal() && e.label == "record_state") {
      recorded_yet[e.process] = true;
      continue;
    }
    if (entries[i].klass != MessageClass::kUnderlying) continue;
    if (!recorded_yet[e.process]) {
      in_cut[i] = true;
      ++result.cut_sizes[e.process];
    }
  }
  CausalityIndex causality(result.trace, scenario.num_processes);
  result.cut_consistent = true;
  for (std::size_t i = 0; i < n_events && result.cut_consistent; ++i) {
    if (!in_cut[i]) continue;
    for (std::size_t j = 0; j < n_events; ++j) {
      if (in_cut[j] || entries[j].klass != MessageClass::kUnderlying)
        continue;
      if (entries[j].event.IsInternal()) continue;
      if (causality.HappenedBefore(j, i)) {
        result.cut_consistent = false;
        break;
      }
    }
  }
  return result;
}

}  // namespace hpl::protocols
