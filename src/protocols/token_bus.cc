#include "protocols/token_bus.h"

namespace hpl::protocols {

TokenBusSystem::TokenBusSystem(int num_processes, int max_passes)
    : num_processes_(num_processes), max_passes_(max_passes) {
  if (num_processes < 2)
    throw hpl::ModelError("TokenBusSystem: need at least 2 processes");
  if (max_passes < 0)
    throw hpl::ModelError("TokenBusSystem: negative max_passes");
}

TokenBusSystem::State TokenBusSystem::Reconstruct(
    const hpl::Computation& x) const {
  // The token's trajectory is determined by the send/receive events; sends
  // are numbered 0.. in order, so the k-th send uses message id k.
  State s;
  for (const hpl::Event& e : x.events()) {
    if (e.IsSend()) {
      s.in_flight = true;
      s.dest = e.peer;
      ++s.passes;
    } else if (e.IsReceive()) {
      s.in_flight = false;
      s.holder = e.process;
    }
  }
  return s;
}

std::vector<hpl::Event> TokenBusSystem::EnabledEvents(
    const hpl::Computation& x) const {
  const State s = Reconstruct(x);
  std::vector<hpl::Event> out;
  if (s.in_flight) {
    // Only the destination can act: receive the token.
    out.push_back(hpl::Receive(s.dest,
                               /*from=*/[&] {
                                 // sender of the last send
                                 for (auto it = x.events().rbegin();
                                      it != x.events().rend(); ++it)
                                   if (it->IsSend()) return it->process;
                                 throw hpl::ModelError("token bus: lost send");
                               }(),
                               /*m=*/s.passes - 1, "token"));
    return out;
  }
  if (s.passes >= max_passes_) return out;  // pass budget exhausted
  const hpl::ProcessId h = s.holder;
  if (h > 0)
    out.push_back(hpl::Send(h, h - 1, /*m=*/s.passes, "token"));
  if (h < num_processes_ - 1)
    out.push_back(hpl::Send(h, h + 1, /*m=*/s.passes, "token"));
  return out;
}

std::optional<hpl::ProcessId> TokenBusSystem::TokenAt(
    const hpl::Computation& x) const {
  const State s = Reconstruct(x);
  if (s.in_flight) return std::nullopt;
  return s.holder;
}

hpl::Predicate TokenBusSystem::HoldsToken(hpl::ProcessId p) const {
  // Self-contained (does not capture `this`): the token's location is a
  // function of the send/receive events alone, so the predicate stays valid
  // beyond the system's lifetime.
  return hpl::Predicate(
      "token_at_p" + std::to_string(p), [p](const hpl::Computation& x) {
        bool in_flight = false;
        hpl::ProcessId holder = 0;
        for (const hpl::Event& e : x.events()) {
          if (e.IsSend()) in_flight = true;
          if (e.IsReceive()) {
            in_flight = false;
            holder = e.process;
          }
        }
        return !in_flight && holder == p;
      });
}

std::string TokenBusSystem::Name() const {
  return "token_bus(n=" + std::to_string(num_processes_) +
         ",passes=" + std::to_string(max_passes_) + ")";
}

}  // namespace hpl::protocols
