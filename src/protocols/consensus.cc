#include "protocols/consensus.h"

#include <algorithm>
#include <memory>

#include "protocols/heartbeat.h"

namespace hpl::protocols {

using hpl::sim::Context;
using hpl::sim::Message;
using hpl::sim::MessageClass;
using hpl::sim::Time;
using hpl::sim::TimerId;

namespace {

// (value, ts) estimates travel packed into one message field.
constexpr std::int64_t kValueBits = 20;
constexpr std::int64_t kValueMask = (std::int64_t{1} << kValueBits) - 1;

std::int64_t Pack(std::int64_t value, std::int64_t ts) {
  return (ts << kValueBits) | value;
}
std::int64_t PackedValue(std::int64_t b) { return b & kValueMask; }
std::int64_t PackedTs(std::int64_t b) { return b >> kValueBits; }

class ConsensusActor : public hpl::sim::Actor {
 public:
  ConsensusActor(const ConsensusScenario& scenario, std::int64_t initial)
      : scenario_(scenario),
        detector_(scenario.num_processes, scenario.suspect_timeout),
        estimate_(initial) {}

  void OnStart(Context& ctx) override {
    EnterRound(ctx, 0);
    ctx.SetTimer(scenario_.tick_interval);
  }

  void OnTimer(Context& ctx, TimerId) override {
    if (ctx.Now() > scenario_.run_until) return;  // wind down: stop ticking
    Broadcast(ctx, MessageClass::kOverhead, "hb");
    if (decided_) {
      Broadcast(ctx, MessageClass::kUnderlying, "decide", round_, decision_);
    } else {
      // ◇S step: a silent coordinator is presumed crashed; move on.  False
      // suspicion just burns a round — safety never depends on it.
      if (Coordinator() != ctx.Self() &&
          detector_.Suspects(Coordinator(), ctx.Now()))
        EnterRound(ctx, round_ + 1);
      Retransmit(ctx);
    }
    ctx.SetTimer(scenario_.tick_interval);
  }

  void OnMessage(Context& ctx, const Message& msg) override {
    detector_.HeardFrom(msg.from, ctx.Now());
    if (msg.type == "hb") return;
    if (msg.type == "decide") {
      if (!decided_) Decide(ctx, msg.b);
      decided_at_.Insert(msg.from);
      MaybeHaltAllDecided(ctx);
      return;
    }
    if (decided_) {
      // Help stragglers directly instead of waiting for the next tick.
      ctx.Send(msg.from, MessageClass::kUnderlying, "decide", round_,
               decision_);
      return;
    }
    if (msg.type == "round") {
      if (msg.a > round_) EnterRound(ctx, msg.a);
      return;
    }
    if (msg.type == "est") {
      if (msg.a > round_) EnterRound(ctx, msg.a);
      if (msg.a != round_ || Coordinator() != ctx.Self()) return;
      if (proposed_) {
        // Late estimate after the proposal went out: answer with the
        // proposal so a drop-delayed participant can still ack.
        ctx.Send(msg.from, MessageClass::kUnderlying, "prop", round_,
                 estimate_);
        return;
      }
      CollectEstimate(ctx, msg.from, PackedValue(msg.b), PackedTs(msg.b));
      return;
    }
    if (msg.type == "prop") {
      if (msg.a > round_) EnterRound(ctx, msg.a);
      if (msg.a != round_) return;  // stale proposal from a burnt round
      // Phase 3: adopt and ack.  Re-acking duplicate proposals is how acks
      // survive message loss (the coordinator retransmits the proposal).
      estimate_ = msg.b;
      ts_ = round_;
      acked_ = true;
      ctx.Send(Coordinator(), MessageClass::kUnderlying, "ack", round_);
      return;
    }
    if (msg.type == "ack") {
      if (msg.a != round_ || Coordinator() != ctx.Self() || !proposed_)
        return;
      ack_from_.Insert(msg.from);
      if (ack_from_.Size() > scenario_.num_processes / 2)
        Decide(ctx, estimate_);
      return;
    }
  }

  void OnRecover(Context& ctx, bool wiped) override {
    if (wiped) {
      // Amnesia recovery loses the volatile phase state; the estimate, its
      // ts, and any decision survive, modelling the stable storage a real
      // crash-recovery consensus needs (losing the ts lock could let two
      // majorities decide differently).
      proposed_ = false;
      acked_ = false;
      est_from_ = hpl::ProcessSet();
      ack_from_ = hpl::ProcessSet();
      best_ts_ = -1;
      decided_at_ = decided_ ? hpl::ProcessSet::Of(ctx.Self())
                             : hpl::ProcessSet();
    }
    // The crash cancelled the tick timer; resume the heartbeat/retransmit
    // loop unless the run is already winding down.
    if (ctx.Now() <= scenario_.run_until) ctx.SetTimer(scenario_.tick_interval);
  }

  bool decided() const noexcept { return decided_; }
  std::int64_t decision() const noexcept { return decision_; }
  int max_round() const noexcept { return max_round_; }
  Time decision_time() const noexcept { return decision_time_; }

 private:
  hpl::ProcessId Coordinator() const {
    return static_cast<hpl::ProcessId>(round_ % scenario_.num_processes);
  }

  void Broadcast(Context& ctx, MessageClass klass, const char* type,
                 std::int64_t a = 0, std::int64_t b = 0) {
    for (hpl::ProcessId p = 0; p < ctx.NumProcesses(); ++p)
      if (p != ctx.Self()) ctx.Send(p, klass, type, a, b);
  }

  void EnterRound(Context& ctx, std::int64_t r) {
    round_ = r;
    max_round_ = std::max(max_round_, static_cast<int>(r));
    proposed_ = false;
    acked_ = false;
    est_from_ = hpl::ProcessSet();
    ack_from_ = hpl::ProcessSet();
    // Gossip the round so slow processes converge on the highest round
    // instead of stalling a majority across two rounds.
    Broadcast(ctx, MessageClass::kOverhead, "round", round_);
    if (Coordinator() == ctx.Self())
      CollectEstimate(ctx, ctx.Self(), estimate_, ts_);
    else
      SendEstimate(ctx);
  }

  void SendEstimate(Context& ctx) {
    ctx.Send(Coordinator(), MessageClass::kUnderlying, "est", round_,
             Pack(estimate_, ts_));
  }

  void CollectEstimate(Context& ctx, hpl::ProcessId from, std::int64_t value,
                       std::int64_t ts) {
    if (est_from_.Contains(from)) return;
    est_from_.Insert(from);
    if (est_from_.Size() == 1 || ts > best_ts_) {
      best_ts_ = ts;
      best_value_ = value;
    }
    if (est_from_.Size() > scenario_.num_processes / 2) {
      // Phase 2: propose the highest-ts estimate of a majority; adopt it
      // ourselves (the coordinator's own ack is implicit).
      proposed_ = true;
      estimate_ = best_value_;
      ts_ = round_;
      ack_from_ = hpl::ProcessSet::Of(ctx.Self());
      Broadcast(ctx, MessageClass::kUnderlying, "prop", round_, estimate_);
      if (ack_from_.Size() > scenario_.num_processes / 2)
        Decide(ctx, estimate_);  // n == 1 degenerates to deciding alone
    }
  }

  void Retransmit(Context& ctx) {
    if (Coordinator() == ctx.Self()) {
      if (proposed_)
        Broadcast(ctx, MessageClass::kUnderlying, "prop", round_, estimate_);
    } else if (!acked_) {
      SendEstimate(ctx);
    }
    // An acked participant stays quiet: the coordinator's retransmitted
    // proposal re-triggers the ack if the first one was lost.
  }

  void Decide(Context& ctx, std::int64_t value) {
    decided_ = true;
    decision_ = value;
    decision_time_ = ctx.Now();
    ctx.Internal("decide");
    decided_at_.Insert(ctx.Self());
    Broadcast(ctx, MessageClass::kUnderlying, "decide", round_, decision_);
    MaybeHaltAllDecided(ctx);
  }

  void MaybeHaltAllDecided(Context& ctx) {
    // Once every process is known to have decided nothing new can happen;
    // halting keeps fault-free runs (the bench hot path) short.  With
    // crashes the run simply drains at run_until instead.
    if (decided_at_ == hpl::ProcessSet::All(scenario_.num_processes))
      ctx.HaltSimulation("all decided");
  }

  ConsensusScenario scenario_;
  SilenceDetector detector_;
  std::int64_t round_ = 0;
  int max_round_ = 0;
  std::int64_t estimate_;
  std::int64_t ts_ = 0;
  bool proposed_ = false;  // coordinator: proposal sent this round
  bool acked_ = false;     // participant: acked this round
  hpl::ProcessSet est_from_;
  hpl::ProcessSet ack_from_;
  std::int64_t best_value_ = 0;
  std::int64_t best_ts_ = -1;
  bool decided_ = false;
  std::int64_t decision_ = -1;
  Time decision_time_ = -1;
  hpl::ProcessSet decided_at_;  // processes known to have decided
};

}  // namespace

ConsensusResult RunConsensusScenario(const ConsensusScenario& scenario) {
  if (scenario.num_processes < 1 ||
      scenario.num_processes > hpl::kMaxProcesses)
    throw hpl::ModelError("consensus: bad process count");
  std::vector<std::int64_t> initial = scenario.initial_values;
  if (initial.empty())
    for (int p = 0; p < scenario.num_processes; ++p) initial.push_back(p);
  if (static_cast<int>(initial.size()) != scenario.num_processes)
    throw hpl::ModelError("consensus: initial_values size mismatch");
  for (std::int64_t v : initial)
    if (v < 0 || v > kValueMask)
      throw hpl::ModelError("consensus: initial value out of packed range");

  std::vector<std::unique_ptr<hpl::sim::Actor>> actors;
  std::vector<const ConsensusActor*> ptrs;
  for (int p = 0; p < scenario.num_processes; ++p) {
    auto actor = std::make_unique<ConsensusActor>(
        scenario, initial[static_cast<std::size_t>(p)]);
    ptrs.push_back(actor.get());
    actors.push_back(std::move(actor));
  }

  hpl::sim::SimulatorOptions options;
  options.network = scenario.network;
  options.seed = scenario.seed;
  options.max_steps = scenario.max_steps;
  options.faults = scenario.faults;
  hpl::sim::Simulator sim(std::move(actors), options);

  ConsensusResult result;
  result.stats = sim.Run();
  result.all_correct_decided = true;
  for (int p = 0; p < scenario.num_processes; ++p) {
    const ConsensusActor* actor = ptrs[static_cast<std::size_t>(p)];
    result.decisions.push_back(actor->decided() ? actor->decision() : -1);
    result.max_round = std::max(result.max_round, actor->max_round());
    if (actor->decided()) {
      if (result.decided_value == -1) result.decided_value = actor->decision();
      if (actor->decision() != result.decided_value)
        result.agreement = false;
      result.last_decision_time =
          std::max(result.last_decision_time, actor->decision_time());
    } else if (!sim.Crashed(p)) {
      result.all_correct_decided = false;
    }
  }
  if (result.decided_value != -1 &&
      std::find(initial.begin(), initial.end(), result.decided_value) ==
          initial.end())
    result.validity = false;
  return result;
}

}  // namespace hpl::protocols
