// Synchronous (timed) rounds — the paper's second Discussion
// generalization ("we can introduce the notion of time into
// computations"), for which the paper warns its results do NOT apply.
//
// LockstepSystem models two processes in synchronous rounds: in round r,
// q either sends a heartbeat or (if crashed) stays silent; any sent
// heartbeat is delivered *within the round*; then both processes tick.
// The lock-step constraint is enforced by the enabled-events generator —
// it deliberately steps outside the paper's free-interleaving model (no
// asynchronous system has such computations).
//
// Consequence, demonstrated by tests and bench E19: after a silent round,
// p KNOWS q has crashed even though no message (no process chain <q p>)
// reached it — Theorem 5 fails under synchrony, which is exactly why
// Section 5's "failure detection is impossible without time-outs" carries
// the "without time-outs" qualifier.
#ifndef HPL_PROTOCOLS_LOCKSTEP_H_
#define HPL_PROTOCOLS_LOCKSTEP_H_

#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/system.h"

namespace hpl::protocols {

class LockstepSystem : public hpl::System {
 public:
  // Processes: p = 0 (monitor), q = 1 (may crash before any round).
  explicit LockstepSystem(int rounds);

  int NumProcesses() const override { return 2; }
  std::vector<hpl::Event> EnabledEvents(
      const hpl::Computation& x) const override;
  std::string Name() const override;

  // "q has crashed" — local to q.
  hpl::Predicate Crashed() const;

  // Number of completed rounds (p's ticks) in x.
  int CompletedRounds(const hpl::Computation& x) const;

  // The canonical alive-for-k-rounds / crashed-at-round-c computations.
  hpl::Computation AliveRun(int rounds) const;
  hpl::Computation CrashedRun(int crash_round, int total_rounds) const;

 private:
  struct State {
    int round = 0;       // rounds fully completed
    bool crashed = false;
    int phase = 0;  // 0: q acts; 1: delivery (if sent); 2: p tick; 3: q tick
    bool sent_this_round = false;
  };
  State Reconstruct(const hpl::Computation& x) const;

  int rounds_;
};

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_LOCKSTEP_H_
