// Knowledge relay (Theorem 5 made concrete).
//
// A line of processes p0 -> p1 -> ... -> p_{n-1}.  p0 establishes a fact b
// (an internal event) and sends a message down the chain; each hop extends
// the nested knowledge: after k hops,
//   K{p_k} K{p_{k-1}} ... K{p_0} b
// holds, and by Theorem 5 gaining that required the chain <p0 p1 ... p_k>.
// The minimum number of messages for depth-(k+1) nested knowledge is k —
// one per link — which the model checker verifies exactly.
#ifndef HPL_PROTOCOLS_RELAY_H_
#define HPL_PROTOCOLS_RELAY_H_

#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/system.h"

namespace hpl::protocols {

class RelaySystem : public hpl::System {
 public:
  explicit RelaySystem(int num_processes);

  int NumProcesses() const override { return num_processes_; }
  std::vector<hpl::Event> EnabledEvents(
      const hpl::Computation& x) const override;
  std::string Name() const override;

  // The relayed fact: p0 performed its "fact" internal event.
  hpl::Predicate Fact() const;

  // The nested-knowledge chain after k hops:
  // {p_k}, {p_{k-1}}, ..., {p_0} — outermost first, as Theorems 4-6 write
  // P1 ... Pn with Pn innermost.
  std::vector<hpl::ProcessSet> NestedChain(int hops) const;

 private:
  int num_processes_;
};

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_RELAY_H_
