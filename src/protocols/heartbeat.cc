#include "protocols/heartbeat.h"

#include <memory>

#include "core/faults.h"

namespace hpl::protocols {

using hpl::sim::Context;
using hpl::sim::Message;
using hpl::sim::MessageClass;
using hpl::sim::Time;
using hpl::sim::TimerId;

SilenceDetector::SilenceDetector(int num_processes, Time timeout)
    : last_heard_(static_cast<std::size_t>(num_processes), 0),
      timeout_(timeout) {
  if (num_processes <= 0)
    throw hpl::ModelError("SilenceDetector: no processes");
  if (timeout <= 0) throw hpl::ModelError("SilenceDetector: timeout <= 0");
}

void SilenceDetector::HeardFrom(hpl::ProcessId p, Time now) {
  last_heard_.at(static_cast<std::size_t>(p)) = now;
}

bool SilenceDetector::Suspects(hpl::ProcessId p, Time now) const {
  return now - last_heard_.at(static_cast<std::size_t>(p)) >= timeout_;
}

hpl::ProcessSet SilenceDetector::Suspected(Time now) const {
  hpl::ProcessSet suspected;
  for (std::size_t p = 0; p < last_heard_.size(); ++p)
    if (now - last_heard_[p] >= timeout_)
      suspected.Insert(static_cast<hpl::ProcessId>(p));
  return suspected;
}

namespace {

// Process 1: emits heartbeats every interval until crash_at (if any).
class MonitoredActor : public hpl::sim::Actor {
 public:
  explicit MonitoredActor(const HeartbeatScenario& s) : scenario_(s) {}

  void OnStart(Context& ctx) override {
    ctx.SetTimer(scenario_.heartbeat_interval);
  }

  void OnTimer(Context& ctx, TimerId) override {
    if (scenario_.crash_at >= 0 && ctx.Now() >= scenario_.crash_at) {
      ctx.Crash();
      return;
    }
    if (ctx.Now() > scenario_.run_until) {
      // Wind down — but a pending crash must still happen, even when it is
      // scheduled after run_until, or the ground truth would be a lie.
      if (scenario_.crash_at >= 0)
        ctx.SetTimer(scenario_.heartbeat_interval);
      return;
    }
    ctx.Send(0, MessageClass::kOverhead, "heartbeat");
    ctx.SetTimer(scenario_.heartbeat_interval);
  }

  void OnMessage(Context&, const Message&) override {}

 private:
  HeartbeatScenario scenario_;
};

// Process 0: the monitor — a one-suspect SilenceDetector driven by a
// re-arming timer.
class MonitorActor : public hpl::sim::Actor {
 public:
  explicit MonitorActor(const HeartbeatScenario& s)
      : scenario_(s), detector_(2, s.timeout >= 0 ? s.timeout : 1) {}

  void OnStart(Context& ctx) override {
    if (scenario_.timeout >= 0) ctx.SetTimer(scenario_.timeout);
  }

  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type != "heartbeat") return;
    ++heartbeats_;
    detector_.HeardFrom(1, ctx.Now());
    last_heartbeat_ = ctx.Now();
  }

  void OnTimer(Context& ctx, TimerId) override {
    if (suspected_ || ctx.Now() > scenario_.run_until) return;
    if (detector_.Suspects(1, ctx.Now())) {
      suspected_ = true;
      suspect_time_ = ctx.Now();
      ctx.Internal("suspect");
      return;
    }
    ctx.SetTimer(scenario_.timeout - (ctx.Now() - last_heartbeat_));
  }

  bool suspected() const noexcept { return suspected_; }
  Time suspect_time() const noexcept { return suspect_time_; }
  std::size_t heartbeats() const noexcept { return heartbeats_; }

 private:
  HeartbeatScenario scenario_;
  SilenceDetector detector_;
  Time last_heartbeat_ = 0;
  bool suspected_ = false;
  Time suspect_time_ = -1;
  std::size_t heartbeats_ = 0;
};

}  // namespace

HeartbeatResult RunHeartbeatScenario(const HeartbeatScenario& scenario) {
  std::vector<std::unique_ptr<hpl::sim::Actor>> actors;
  auto monitor = std::make_unique<MonitorActor>(scenario);
  const MonitorActor* monitor_ptr = monitor.get();
  actors.push_back(std::move(monitor));
  actors.push_back(std::make_unique<MonitoredActor>(scenario));

  hpl::sim::SimulatorOptions options;
  options.network = scenario.network;
  options.seed = scenario.seed;
  options.max_steps = 1'000'000;
  hpl::sim::Simulator sim(std::move(actors), options);
  sim.Run();

  HeartbeatResult result;
  result.crashed = scenario.crash_at >= 0;
  result.crash_time = scenario.crash_at;
  // The crash happens on the first heartbeat tick at or after crash_at;
  // report the actual event time so detection latency is measured from the
  // real silence onset, not the requested one.
  for (const auto& entry : sim.trace().entries()) {
    if (hpl::IsCrashEvent(entry.event)) {
      result.crash_time = entry.time;
      break;
    }
  }
  result.suspected = monitor_ptr->suspected();
  result.suspect_time = monitor_ptr->suspect_time();
  result.heartbeats_received = monitor_ptr->heartbeats();
  result.false_suspicion = result.suspected && !result.crashed;
  if (result.suspected && result.crashed)
    result.detection_latency = result.suspect_time - result.crash_time;
  return result;
}

}  // namespace hpl::protocols
