// Chandra-Toueg ◇S rotating-coordinator consensus.
//
// The paper's Section-5 impossibility says crash detection needs timeouts,
// and timeouts are sometimes wrong; Chandra-Toueg showed that an
// *eventually strong* (◇S) detector — one that may suspect falsely, as
// long as some correct process is eventually never suspected — suffices
// for consensus with a majority of correct processes.  Each actor here
// embeds the heartbeat SilenceDetector (heartbeat.h): every process
// heartbeats every process, and "silent for suspect_timeout ticks" is the
// suspicion rule whose inevitable false positives the algorithm tolerates.
//
// Rounds rotate the coordinator (round r is coordinated by r mod n) and
// follow the classic four phases, collapsed onto an asynchronous actor:
//   1. everyone sends its (estimate, ts) to the coordinator;
//   2. the coordinator picks the estimate with the highest ts from a
//      majority and proposes it;
//   3. a participant that receives the proposal adopts it (ts := r) and
//      acks; one that instead suspects the coordinator moves to round r+1;
//   4. on a majority of acks the coordinator decides and floods "decide".
// The ts-locking in phases 2/3 gives agreement: a decided value was
// adopted by a majority, so every later coordinator's majority overlaps it
// and must pick that value again.
//
// The network may drop up to ~20% of messages (NetworkOptions fault
// knobs): every phase message is retransmitted on a periodic tick, and
// round announcements are gossiped so live processes converge on the
// highest round instead of stalling in partitioned phase states.
#ifndef HPL_PROTOCOLS_CONSENSUS_H_
#define HPL_PROTOCOLS_CONSENSUS_H_

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace hpl::protocols {

struct ConsensusScenario {
  int num_processes = 3;
  // Initial value per process; sized to num_processes (default: p -> p).
  // Values must fit in 20 bits (they are packed with the adoption ts).
  std::vector<std::int64_t> initial_values;
  // Heartbeat / retransmission tick.
  hpl::sim::Time tick_interval = 5;
  // Silence before suspecting a process.  Must exceed tick_interval plus
  // the maximum network delay, or every process is suspected immediately.
  hpl::sim::Time suspect_timeout = 40;
  // Wind-down horizon: all timers stop after this, draining the queue.
  hpl::sim::Time run_until = 1500;
  // Scheduled crashes/recoveries, forwarded to the simulator.
  std::vector<hpl::sim::FaultEvent> faults;
  hpl::sim::NetworkOptions network;
  std::uint64_t seed = 1;
  std::size_t max_steps = 2'000'000;
};

struct ConsensusResult {
  bool all_correct_decided = false;  // every non-crashed process decided
  bool agreement = true;             // all decisions equal
  bool validity = true;              // the decision is someone's initial value
  std::int64_t decided_value = -1;   // -1 if nobody decided
  std::vector<std::int64_t> decisions;  // per process, -1 = undecided
  int max_round = 0;                 // highest round any process entered
  hpl::sim::Time last_decision_time = -1;
  hpl::sim::RunStats stats;
};

ConsensusResult RunConsensusScenario(const ConsensusScenario& scenario);

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_CONSENSUS_H_
