#include "protocols/termination.h"

#include <memory>

#include "protocols/dijkstra_scholten.h"
#include "protocols/safra.h"

namespace hpl::protocols {

using hpl::sim::MessageClass;
using hpl::sim::Simulator;
using hpl::sim::SimulatorOptions;

std::string ToString(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kDijkstraScholten:
      return "dijkstra-scholten";
    case DetectorKind::kSafra:
      return "safra";
  }
  return "?";
}

TerminationExperimentResult RunTerminationExperiment(
    const TerminationExperimentOptions& options) {
  WorkloadOptions wl = options.workload;
  wl.seed = options.seed * 7919 + 17;
  auto workload = std::make_shared<WorkloadState>(wl);

  std::vector<std::unique_ptr<hpl::sim::Actor>> actors;
  const DijkstraScholtenActor* ds_root = nullptr;
  const SafraActor* safra_root = nullptr;
  for (int p = 0; p < options.num_processes; ++p) {
    const bool root = (p == 0);
    switch (options.detector) {
      case DetectorKind::kDijkstraScholten: {
        auto actor = std::make_unique<DijkstraScholtenActor>(root, workload);
        if (root) ds_root = actor.get();
        actors.push_back(std::move(actor));
        break;
      }
      case DetectorKind::kSafra: {
        SafraOptions so;
        so.probe_interval = options.safra_probe_interval;
        auto actor = std::make_unique<SafraActor>(root, workload, so);
        if (root) safra_root = actor.get();
        actors.push_back(std::move(actor));
        break;
      }
    }
  }

  SimulatorOptions sim_options;
  sim_options.network = options.network;
  sim_options.seed = options.seed;
  Simulator sim(std::move(actors), sim_options);
  const hpl::sim::RunStats stats = sim.Run();

  TerminationExperimentResult result;
  result.underlying_messages = stats.underlying_sent;
  result.overhead_messages = stats.overhead_sent;
  result.overhead_ratio =
      static_cast<double>(result.overhead_messages) /
      static_cast<double>(std::max<std::size_t>(result.underlying_messages, 1));

  // True termination: the time of the last underlying receive (after it, no
  // process is ever reactivated).
  for (const auto& entry : sim.trace().entries())
    if (entry.event.IsReceive() && entry.klass == MessageClass::kUnderlying)
      result.true_termination_time =
          std::max(result.true_termination_time, entry.time);
  for (const auto& entry : sim.trace().entries())
    if (entry.event.IsSend() && entry.klass == MessageClass::kOverhead &&
        entry.time >= result.true_termination_time)
      ++result.overhead_after_termination;

  if (ds_root != nullptr) {
    result.announced = ds_root->announced();
    result.announce_time = ds_root->announce_time();
  }
  if (safra_root != nullptr) {
    result.announced = safra_root->announced();
    result.announce_time = safra_root->announce_time();
    result.probe_rounds = safra_root->probe_rounds();
  }
  result.safe =
      result.announced && result.announce_time >= result.true_termination_time;
  return result;
}

}  // namespace hpl::protocols
