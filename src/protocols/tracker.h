// Remote predicate tracking (paper Section 5).
//
// "We show that it is impossible for process P to track the change in value
// of a local predicate of P̄ exactly at all times; P must be unsure about
// the value of this predicate while it is undergoing change."
//
// Two artifacts:
//  1. TrackerSystem — a tiny core::System where q owns a bit (flipped by
//     internal events) and notifies p after each flip; exact knowledge
//     checking shows p is unsure at every point where the bit can still
//     change, and that q knows "p unsure b" whenever q flips.
//  2. RunTrackingScenario — a simulation measuring how long p's belief
//     lags q's bit under notification protocols (staleness windows).
#ifndef HPL_PROTOCOLS_TRACKER_H_
#define HPL_PROTOCOLS_TRACKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace hpl::protocols {

// Model-level system: processes {p=0, q=1}.  q's script: flip, notify,
// flip, notify, ... up to `num_flips`; p only receives.  The bit starts
// false; each "flip" internal event toggles it.
class TrackerSystem : public hpl::System {
 public:
  explicit TrackerSystem(int num_flips);

  int NumProcesses() const override { return 2; }
  std::vector<hpl::Event> EnabledEvents(
      const hpl::Computation& x) const override;
  std::string Name() const override;

  // The tracked bit: parity of q's flip events.
  hpl::Predicate Bit() const;

  // True iff q can still flip in some extension (the bit is "undergoing
  // change") — used to state the impossibility precisely.
  bool CanStillChange(const hpl::Computation& x) const;

 private:
  int num_flips_;
};

// Simulation-level scenario.
struct TrackingScenario {
  int num_flips = 20;
  hpl::sim::Time flip_interval = 25;
  hpl::sim::NetworkOptions network;
  std::uint64_t seed = 1;
};

struct TrackingResult {
  int flips = 0;
  std::size_t notifications = 0;
  // Total simulated time during which p's last-notified value differed from
  // q's actual bit (the staleness the paper proves unavoidable).
  hpl::sim::Time stale_time = 0;
  hpl::sim::Time total_time = 0;
  double stale_fraction = 0.0;
};

TrackingResult RunTrackingScenario(const TrackingScenario& scenario);

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_TRACKER_H_
