// The paper's token-bus example (Section 4.1).
//
// "Consider a token bus which is a linear sequence of processes among which
// a token is passed back and forth; processes at the left or right boundary
// have only a right or left neighbor to whom they may pass the token; other
// processes may send it to either neighbor.  There is only one token in the
// system and initially it is at the leftmost process."
//
// TokenBusSystem is a core::System enumerating every computation with up to
// `max_passes` token transfers, suitable for exact knowledge model
// checking — e.g. the paper's claim that with five processes p,q,r,s,t and
// the token at r:
//   r knows ((q knows !token_at(p)) && (s knows !token_at(t))).
#ifndef HPL_PROTOCOLS_TOKEN_BUS_H_
#define HPL_PROTOCOLS_TOKEN_BUS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/system.h"

namespace hpl::protocols {

class TokenBusSystem : public hpl::System {
 public:
  TokenBusSystem(int num_processes, int max_passes);

  int NumProcesses() const override { return num_processes_; }
  std::vector<hpl::Event> EnabledEvents(
      const hpl::Computation& x) const override;
  std::string Name() const override;

  // Where the token is in computation x: the holding process, or nullopt
  // while the token is in flight.
  std::optional<hpl::ProcessId> TokenAt(const hpl::Computation& x) const;

  // Predicate "process p holds the token" (false while in flight).
  hpl::Predicate HoldsToken(hpl::ProcessId p) const;

 private:
  struct State {
    hpl::ProcessId holder = 0;       // meaningful when !in_flight
    bool in_flight = false;
    hpl::ProcessId dest = 0;         // meaningful when in_flight
    int passes = 0;                  // sends so far
  };
  State Reconstruct(const hpl::Computation& x) const;

  int num_processes_;
  int max_passes_;
};

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_TOKEN_BUS_H_
