#include "protocols/two_generals.h"

namespace hpl::protocols {

namespace {
constexpr hpl::ProcessId kA = 0;
constexpr hpl::ProcessId kB = 1;

hpl::ProcessId SenderOf(int k) { return k % 2 == 0 ? kA : kB; }
std::string LabelOf(int k) { return k == 0 ? "attack" : "ack"; }
}  // namespace

TwoGeneralsSystem::TwoGeneralsSystem(int max_messages)
    : max_messages_(max_messages) {
  if (max_messages < 1)
    throw hpl::ModelError("TwoGeneralsSystem: need >= 1 message");
}

std::vector<hpl::Event> TwoGeneralsSystem::EnabledEvents(
    const hpl::Computation& x) const {
  // Message k (id k) goes A->B for even k, B->A for odd k; its send is
  // enabled once message k-1 has been received by the sender.
  int sent = 0, received = 0;
  for (const hpl::Event& e : x.events()) {
    if (e.IsSend()) ++sent;
    if (e.IsReceive()) ++received;
  }
  std::vector<hpl::Event> out;
  // Next send: message `sent`, allowed when the previous message has been
  // received (sends happen in order; each is an ack of the previous).
  if (sent < max_messages_ && received == sent) {
    const auto k = sent;
    out.push_back(hpl::Send(SenderOf(k), SenderOf(k + 1),
                            static_cast<hpl::MessageId>(k), LabelOf(k)));
  }
  // Pending delivery: message `received` (FIFO alternation means at most
  // one message is ever in flight).
  if (received < sent) {
    const auto k = received;
    out.push_back(hpl::Receive(SenderOf(k + 1), SenderOf(k),
                               static_cast<hpl::MessageId>(k), LabelOf(k)));
  }
  return out;
}

std::string TwoGeneralsSystem::Name() const {
  return "two_generals(max=" + std::to_string(max_messages_) + ")";
}

hpl::Predicate TwoGeneralsSystem::Ordered() const {
  return hpl::Predicate("ordered", [](const hpl::Computation& x) {
    for (const hpl::Event& e : x.events())
      if (e.IsSend() && e.message == 0) return true;
    return false;
  });
}

hpl::Computation TwoGeneralsSystem::DeliveredRun(int k) const {
  if (k < 0 || k > max_messages_)
    throw hpl::ModelError("TwoGeneralsSystem::DeliveredRun: bad k");
  hpl::Computation x;
  for (int m = 0; m < k; ++m) {
    x = x.Extended(hpl::Send(SenderOf(m), SenderOf(m + 1),
                             static_cast<hpl::MessageId>(m), LabelOf(m)));
    x = x.Extended(hpl::Receive(SenderOf(m + 1), SenderOf(m),
                                static_cast<hpl::MessageId>(m), LabelOf(m)));
  }
  return x;
}

}  // namespace hpl::protocols
