#include "protocols/safra.h"

namespace hpl::protocols {

using hpl::sim::Context;
using hpl::sim::Message;
using hpl::sim::MessageClass;

SafraActor::SafraActor(bool root, WorkloadStatePtr workload,
                       SafraOptions options)
    : root_(root), workload_(std::move(workload)), options_(options) {
  if (!workload_) throw hpl::ModelError("SafraActor: no workload");
}

void SafraActor::OnStart(Context& ctx) {
  if (!root_) return;
  Activate(ctx);
  // First probe fires after one interval; an immediate probe would usually
  // race the first wave of work messages and always fail.
  ctx.SetTimer(options_.probe_interval);
}

void SafraActor::Activate(Context& ctx) {
  for (hpl::ProcessId to :
       DrawActivationSends(*workload_, ctx.Self(), ctx.NumProcesses())) {
    ctx.Send(to, MessageClass::kUnderlying, "work");
    ++counter_;
  }
}

void SafraActor::LaunchToken(Context& ctx) {
  if (announced_ || ctx.NumProcesses() < 2) return;
  ++rounds_;
  // Token travels 0 -> n-1 -> n-2 -> ... -> 1 -> 0 (ring direction is
  // immaterial).  Payload: a = accumulated counter sum, b = token color
  // (1 = black).  The root whitens itself when the probe departs.
  black_ = false;
  ctx.Send(ctx.NumProcesses() - 1, MessageClass::kOverhead, "token",
           /*a=*/0, /*b=*/0);
}

void SafraActor::ForwardToken(Context& ctx, std::int64_t q, bool black) {
  const hpl::ProcessId self = ctx.Self();
  const hpl::ProcessId next = self - 1;  // ring: ... -> 2 -> 1 -> 0
  ctx.Send(next, MessageClass::kOverhead, "token", q + counter_,
           (black || black_) ? 1 : 0);
  black_ = false;  // whiten after forwarding (Safra's rule)
}

void SafraActor::OnMessage(Context& ctx, const Message& msg) {
  if (msg.type == "work") {
    black_ = true;  // receipt may invalidate an in-progress probe
    --counter_;
    Activate(ctx);
    return;
  }
  if (msg.type != "token")
    throw hpl::ModelError("Safra: unexpected message type " + msg.type);

  if (!root_) {
    ForwardToken(ctx, msg.a, msg.b != 0);
    return;
  }
  // Token returned to the root: round verdict.
  const bool token_black = msg.b != 0;
  const std::int64_t total = msg.a + counter_;
  if (!token_black && !black_ && total == 0) {
    announced_ = true;
    announce_time_ = ctx.Now();
    ctx.Internal("announce_termination");
    ctx.HaltSimulation("safra: termination detected");
    return;
  }
  black_ = false;
  ctx.SetTimer(options_.probe_interval);
}

void SafraActor::OnTimer(Context& ctx, hpl::sim::TimerId) {
  if (root_) LaunchToken(ctx);
}

}  // namespace hpl::protocols
