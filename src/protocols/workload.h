// Underlying-computation workload for the termination-detection experiments
// (paper Section 5's lower bound counts "messages in the underlying
// computation" against detector overhead).
//
// The workload is a diffusing computation: a root activates itself at start
// and sends work; receiving work (re)activates a process, which may send
// further work before going passive again.  A shared budget bounds the
// total number of underlying messages, so a run's "M" is controlled.  The
// budget/rng live in shared WorkloadState — a generator convenience the
// detectors under test cannot observe.
#ifndef HPL_PROTOCOLS_WORKLOAD_H_
#define HPL_PROTOCOLS_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/actor.h"
#include "sim/rng.h"

namespace hpl::protocols {

struct WorkloadOptions {
  int budget = 100;        // max underlying messages in the whole run
  int fanout_max = 3;      // max sends per activation
  double fanout_zero_prob = 0.3;  // chance an activation sends nothing
  std::uint64_t seed = 1;
};

struct WorkloadState {
  explicit WorkloadState(const WorkloadOptions& options)
      : options(options), remaining(options.budget), rng(options.seed) {}
  WorkloadOptions options;
  int remaining;
  hpl::sim::Rng rng;
};

using WorkloadStatePtr = std::shared_ptr<WorkloadState>;

// Decides the destinations of the work messages emitted by one activation
// of process `self` in an n-process system, consuming budget.
std::vector<hpl::ProcessId> DrawActivationSends(WorkloadState& state,
                                                hpl::ProcessId self, int n);

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_WORKLOAD_H_
