// Push gossip: how a rumor — and knowledge of it — spreads.
//
// Process 0 establishes a fact, then infected processes push the rumor to
// random peers each pulse until everyone has it.  The analysis side uses
// CausalKnowledge to compute, from the trace alone, when each process came
// to *know* the fact (its entry into the causal cone) and to what nesting
// depth knowledge accumulated — "how processes learn", measured at scales
// where enumeration is impossible.
#ifndef HPL_PROTOCOLS_GOSSIP_H_
#define HPL_PROTOCOLS_GOSSIP_H_

#include <cstdint>
#include <vector>

#include "core/causal_knowledge.h"
#include "sim/simulator.h"

namespace hpl::protocols {

struct GossipScenario {
  int num_processes = 16;
  int fanout = 2;                 // pushes per pulse
  hpl::sim::Time pulse_interval = 5;
  int max_pulses = 64;            // per process, safety bound
  hpl::sim::NetworkOptions network;
  std::uint64_t seed = 1;
};

struct GossipResult {
  bool everyone_infected = false;
  std::size_t messages = 0;
  hpl::sim::Time spread_time = 0;  // last infection time
  // Per process: prefix length at which it first KNOWS the fact
  // (CausalKnowledge), or SIZE_MAX if never.
  std::vector<std::size_t> knowledge_prefix;
  // Per process: simulation time of first knowledge, or -1.
  std::vector<hpl::sim::Time> knowledge_time;
  // Consistency: "infected" (protocol state) must coincide with "knows"
  // (causal cone) at every step.
  bool infection_equals_knowledge = false;
  hpl::Computation trace;
};

GossipResult RunGossipScenario(const GossipScenario& scenario);

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_GOSSIP_H_
