// Harness for the termination-detection experiments (paper Section 5).
//
// Runs a diffusing workload under a chosen detection algorithm, measures
// underlying vs overhead message counts, and validates detection:
//  - safety:   the announcement happens at or after true termination (the
//    time of the last underlying receive);
//  - liveness: the run ends with an announcement.
#ifndef HPL_PROTOCOLS_TERMINATION_H_
#define HPL_PROTOCOLS_TERMINATION_H_

#include <cstdint>
#include <string>

#include "protocols/workload.h"
#include "sim/simulator.h"

namespace hpl::protocols {

enum class DetectorKind { kDijkstraScholten, kSafra };

std::string ToString(DetectorKind kind);

struct TerminationExperimentOptions {
  DetectorKind detector = DetectorKind::kDijkstraScholten;
  int num_processes = 8;
  WorkloadOptions workload;
  hpl::sim::NetworkOptions network;
  hpl::sim::Time safra_probe_interval = 50;
  std::uint64_t seed = 1;
};

struct TerminationExperimentResult {
  std::size_t underlying_messages = 0;  // M
  std::size_t overhead_messages = 0;    // the lower-bound quantity
  double overhead_ratio = 0.0;          // overhead / max(M, 1)
  hpl::sim::Time true_termination_time = 0;  // last underlying receive
  // Overhead sends at/after true termination — Section 5's proof shows
  // detection *requires* control traffic after quiescence, since detecting
  // termination is gaining knowledge (Theorem 5) and the final links of
  // the chain must form after the last underlying event.
  std::size_t overhead_after_termination = 0;
  hpl::sim::Time announce_time = -1;
  int probe_rounds = 0;  // Safra only
  bool announced = false;
  bool safe = false;  // announce_time >= true_termination_time
};

TerminationExperimentResult RunTerminationExperiment(
    const TerminationExperimentOptions& options);

}  // namespace hpl::protocols

#endif  // HPL_PROTOCOLS_TERMINATION_H_
