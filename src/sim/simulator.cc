#include "sim/simulator.h"

namespace hpl::sim {

Simulator::Simulator(std::vector<std::unique_ptr<Actor>> actors,
                     const SimulatorOptions& options)
    : actors_(std::move(actors)),
      network_(options.network, options.seed ^ 0xa5a5a5a5a5a5a5a5ull),
      crashed_(actors_.size(), false),
      epoch_(actors_.size(), 0) {
  if (actors_.empty()) throw hpl::ModelError("Simulator: no actors");
  if (actors_.size() > static_cast<std::size_t>(hpl::kMaxProcesses))
    throw hpl::ModelError("Simulator: too many actors");
  max_steps_ = options.max_steps;
  // Schedule fault events first: at equal times they take their sequence
  // numbers before any message or timer, so a crash at t beats a delivery
  // at t deterministically.
  for (const FaultEvent& fault : options.faults) {
    if (fault.process < 0 ||
        fault.process >= static_cast<hpl::ProcessId>(actors_.size()))
      throw hpl::ModelError("Simulator: fault event for unknown process");
    if (fault.at < 0) throw hpl::ModelError("Simulator: fault event at t<0");
    Pending p;
    p.at = fault.at;
    p.seq = next_seq_++;
    p.is_fault = true;
    p.fault_recover = fault.recover;
    p.fault_wipe = fault.wipe;
    p.target = fault.process;
    queue_.push(std::move(p));
  }
}

void Simulator::ApplyCrash(hpl::ProcessId p) {
  if (crashed_.at(p)) return;
  trace_.Record(hpl::Internal(p, "crash"), now_, MessageClass::kUnderlying);
  trace_.RecordFault(FaultKind::kCrash, now_, p);
  crashed_.at(p) = true;
  ++epoch_.at(p);  // cancels every timer armed before the crash
  ++stats_.crashes;
}

void Simulator::ApplyRecover(hpl::ProcessId p, bool wipe) {
  if (!crashed_.at(p)) return;
  crashed_.at(p) = false;
  trace_.Record(hpl::Internal(p, "recover"), now_, MessageClass::kUnderlying);
  trace_.RecordFault(FaultKind::kRecover, now_, p);
  ++stats_.recoveries;
  current_ = p;
  in_callback_ = true;
  actors_[p]->OnRecover(*this, wipe);
  in_callback_ = false;
}

RunStats Simulator::Run() {
  // Start callbacks run at time 0 in process order.
  for (hpl::ProcessId p = 0; p < NumProcesses(); ++p) {
    current_ = p;
    in_callback_ = true;
    actors_[p]->OnStart(*this);
    in_callback_ = false;
  }

  std::size_t steps = 0;
  while (!queue_.empty() && !halted_ && steps < max_steps_) {
    Pending next = queue_.top();
    queue_.pop();
    now_ = next.at;
    if (next.is_fault) {
      if (next.fault_recover)
        ApplyRecover(next.target, next.fault_wipe);
      else
        ApplyCrash(next.target);
      continue;  // fault events are not delivered stimuli
    }
    const hpl::ProcessId target =
        next.is_timer ? next.target : next.message.to;
    if (crashed_.at(target)) {
      if (!next.is_timer) {
        trace_.RecordFault(FaultKind::kDropCrashed, now_, target,
                           next.message.id, next.message.from);
        ++stats_.drops_crashed;
      }
      continue;  // dropped silently
    }
    // A timer from a previous crash epoch was cancelled by the crash.
    if (next.is_timer && next.timer_epoch != epoch_.at(target)) continue;

    ++steps;
    current_ = target;
    in_callback_ = true;
    if (next.is_timer) {
      actors_[target]->OnTimer(*this, next.timer);
    } else if (next.is_duplicate) {
      // Channel misbehavior, not a model event: the formal computation has
      // at most one receive per message, so the copy lands in the fault
      // ledger only — but the actor still sees it.
      trace_.RecordFault(FaultKind::kDuplicate, now_, next.message.to,
                         next.message.id, next.message.from);
      ++stats_.duplicates;
      actors_[target]->OnMessage(*this, next.message);
    } else {
      trace_.Record(hpl::Receive(next.message.to, next.message.from,
                                 next.message.id, next.message.Label()),
                    now_, next.message.klass);
      ++stats_.messages_delivered;
      actors_[target]->OnMessage(*this, next.message);
    }
    in_callback_ = false;
  }
  current_ = hpl::kNoProcess;
  stats_.completed = queue_.empty() || halted_;
  stats_.end_time = now_;
  return stats_;
}

hpl::MessageId Simulator::Send(hpl::ProcessId to, MessageClass klass,
                               std::string type, std::int64_t a,
                               std::int64_t b) {
  RequireInCallback();
  if (to < 0 || to >= NumProcesses())
    throw hpl::ModelError("Send: bad destination");
  if (to == current_) throw hpl::ModelError("Send: self-send not allowed");
  if (crashed_.at(current_)) return hpl::kNoMessage;

  Message msg;
  msg.id = next_message_++;
  msg.from = current_;
  msg.to = to;
  msg.klass = klass;
  msg.type = std::move(type);
  msg.a = a;
  msg.b = b;

  trace_.Record(hpl::Send(msg.from, msg.to, msg.id, msg.Label()), now_,
                msg.klass);
  ++stats_.messages_sent;
  if (klass == MessageClass::kUnderlying)
    ++stats_.underlying_sent;
  else
    ++stats_.overhead_sent;

  const Routing routing = network_.Route(now_, msg.from, msg.to, msg.klass);
  if (routing.dropped) {
    const FaultKind kind = routing.reason == DropReason::kPartition
                               ? FaultKind::kDropPartition
                               : FaultKind::kDropLoss;
    trace_.RecordFault(kind, now_, msg.to, msg.id, msg.from);
    if (routing.reason == DropReason::kPartition)
      ++stats_.drops_partition;
    else
      ++stats_.drops_loss;
    return msg.id;  // the send happened; the receive never will
  }

  Pending p;
  p.at = routing.at;
  p.seq = next_seq_++;
  p.is_timer = false;
  p.message = msg;
  queue_.push(p);
  if (routing.duplicated) {
    Pending copy;
    copy.at = routing.duplicate_at;
    copy.seq = next_seq_++;
    copy.is_timer = false;
    copy.is_duplicate = true;
    copy.message = std::move(msg);
    queue_.push(std::move(copy));
  }
  return p.message.id;
}

TimerId Simulator::SetTimer(Time delay) {
  RequireInCallback();
  if (delay < 0) throw hpl::ModelError("SetTimer: negative delay");
  const TimerId id = next_timer_++;
  Pending p;
  p.at = now_ + std::max<Time>(delay, 1);
  p.seq = next_seq_++;
  p.is_timer = true;
  p.timer = id;
  p.timer_epoch = epoch_.at(current_);
  p.target = current_;
  queue_.push(std::move(p));
  return id;
}

void Simulator::Internal(std::string label) {
  RequireInCallback();
  if (crashed_.at(current_)) return;
  trace_.Record(hpl::Internal(current_, std::move(label)), now_,
                MessageClass::kUnderlying);
  ++stats_.internal_events;
}

void Simulator::Crash() {
  RequireInCallback();
  ApplyCrash(current_);
}

void Simulator::HaltSimulation(std::string reason) {
  RequireInCallback();
  halted_ = true;
  stats_.halt_reason = std::move(reason);
}

void Simulator::RequireInCallback() const {
  if (!in_callback_)
    throw hpl::ModelError("Context used outside an actor callback");
}

}  // namespace hpl::sim
