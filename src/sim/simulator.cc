#include "sim/simulator.h"

namespace hpl::sim {

Simulator::Simulator(std::vector<std::unique_ptr<Actor>> actors,
                     const SimulatorOptions& options)
    : actors_(std::move(actors)),
      network_(options.network, options.seed ^ 0xa5a5a5a5a5a5a5a5ull),
      crashed_(actors_.size(), false) {
  if (actors_.empty()) throw hpl::ModelError("Simulator: no actors");
  if (actors_.size() > static_cast<std::size_t>(hpl::kMaxProcesses))
    throw hpl::ModelError("Simulator: too many actors");
  max_steps_ = options.max_steps;
}

RunStats Simulator::Run() {
  // Start callbacks run at time 0 in process order.
  for (hpl::ProcessId p = 0; p < NumProcesses(); ++p) {
    current_ = p;
    in_callback_ = true;
    actors_[p]->OnStart(*this);
    in_callback_ = false;
  }

  std::size_t steps = 0;
  while (!queue_.empty() && !halted_ && steps < max_steps_) {
    Pending next = queue_.top();
    queue_.pop();
    now_ = next.at;
    const hpl::ProcessId target =
        next.is_timer ? next.target : next.message.to;
    if (crashed_.at(target)) continue;  // dropped silently

    ++steps;
    current_ = target;
    in_callback_ = true;
    if (next.is_timer) {
      actors_[target]->OnTimer(*this, next.timer);
    } else {
      trace_.Record(hpl::Receive(next.message.to, next.message.from,
                                 next.message.id, next.message.Label()),
                    now_, next.message.klass);
      ++stats_.messages_delivered;
      actors_[target]->OnMessage(*this, next.message);
    }
    in_callback_ = false;
  }
  current_ = hpl::kNoProcess;
  stats_.completed = queue_.empty() || halted_;
  stats_.end_time = now_;
  return stats_;
}

hpl::MessageId Simulator::Send(hpl::ProcessId to, MessageClass klass,
                               std::string type, std::int64_t a,
                               std::int64_t b) {
  RequireInCallback();
  if (to < 0 || to >= NumProcesses())
    throw hpl::ModelError("Send: bad destination");
  if (to == current_) throw hpl::ModelError("Send: self-send not allowed");
  if (crashed_.at(current_)) return hpl::kNoMessage;

  Message msg;
  msg.id = next_message_++;
  msg.from = current_;
  msg.to = to;
  msg.klass = klass;
  msg.type = std::move(type);
  msg.a = a;
  msg.b = b;

  trace_.Record(hpl::Send(msg.from, msg.to, msg.id, msg.Label()), now_,
                msg.klass);
  ++stats_.messages_sent;
  if (klass == MessageClass::kUnderlying)
    ++stats_.underlying_sent;
  else
    ++stats_.overhead_sent;

  Pending p;
  p.at = network_.DeliveryTime(now_, msg.from, msg.to, msg.klass);
  p.seq = next_seq_++;
  p.is_timer = false;
  p.message = msg;
  queue_.push(std::move(p));
  return msg.id;
}

TimerId Simulator::SetTimer(Time delay) {
  RequireInCallback();
  if (delay < 0) throw hpl::ModelError("SetTimer: negative delay");
  const TimerId id = next_timer_++;
  Pending p;
  p.at = now_ + std::max<Time>(delay, 1);
  p.seq = next_seq_++;
  p.is_timer = true;
  p.timer = id;
  p.target = current_;
  queue_.push(std::move(p));
  return id;
}

void Simulator::Internal(std::string label) {
  RequireInCallback();
  if (crashed_.at(current_)) return;
  trace_.Record(hpl::Internal(current_, std::move(label)), now_,
                MessageClass::kUnderlying);
  ++stats_.internal_events;
}

void Simulator::Crash() {
  RequireInCallback();
  if (crashed_.at(current_)) return;
  trace_.Record(hpl::Internal(current_, "crash"), now_,
                MessageClass::kUnderlying);
  crashed_.at(current_) = true;
}

void Simulator::HaltSimulation(std::string reason) {
  RequireInCallback();
  halted_ = true;
  stats_.halt_reason = std::move(reason);
}

void Simulator::RequireInCallback() const {
  if (!in_callback_)
    throw hpl::ModelError("Context used outside an actor callback");
}

}  // namespace hpl::sim
