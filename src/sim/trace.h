// Trace: the record of a simulation run, convertible to the paper's formal
// model (a validated core::Computation).
//
// A trace has two streams.  `entries()` holds the model events — sends,
// receives, and internal events, including the Internal "crash"/"recover"
// markers — and is what ToComputation() and SpaceBuilder::Ingest consume.
// `faults()` is the fault ledger: message drops, duplicate deliveries, and
// crash/recover occurrences.  Drops and duplicates are channel misbehavior
// with no counterpart in the formal model (a dropped message is simply a
// send whose receive never happens), so they live only in the ledger; the
// ledger still participates in Flatten() so deterministic-replay checks
// cover fault decisions byte for byte.
#ifndef HPL_SIM_TRACE_H_
#define HPL_SIM_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/computation.h"
#include "sim/message.h"

namespace hpl::sim {

struct TraceEntry {
  hpl::Event event;
  std::int64_t time = 0;
  MessageClass klass = MessageClass::kUnderlying;
};

enum class FaultKind : std::uint8_t {
  kDropLoss,       // message lost by the channel
  kDropPartition,  // message dropped by a partition window
  kDropCrashed,    // message arrived at a crashed process
  kDuplicate,      // second delivery of a duplicated message
  kCrash,          // process crashed
  kRecover,        // process recovered
};

const char* FaultKindName(FaultKind kind);

struct FaultRecord {
  FaultKind kind = FaultKind::kCrash;
  std::int64_t time = 0;
  // Crash/recover: the affected process.  Drops/duplicates: the receiver.
  hpl::ProcessId process = hpl::kNoProcess;
  // Drops/duplicates: the message and its sender.
  hpl::MessageId message = hpl::kNoMessage;
  hpl::ProcessId from = hpl::kNoProcess;
  // Position in the model-event stream when the fault was recorded; orders
  // the ledger against entries() in Flatten().
  std::size_t entry_index = 0;
};

class Trace {
 public:
  void Record(hpl::Event event, std::int64_t time, MessageClass klass);
  void RecordFault(FaultKind kind, std::int64_t time, hpl::ProcessId process,
                   hpl::MessageId message = hpl::kNoMessage,
                   hpl::ProcessId from = hpl::kNoProcess);

  const std::vector<TraceEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<FaultRecord>& faults() const noexcept { return faults_; }

  // The run as a system computation (throws if the trace violates the
  // model, which would indicate a simulator bug).
  hpl::Computation ToComputation() const;

  // The prefix of the computation consisting of the first n events.
  hpl::Computation ToComputationPrefix(std::size_t n) const;

  // Event counts by class/kind.
  std::size_t CountSends(MessageClass klass) const;
  std::size_t CountReceives(MessageClass klass) const;
  std::size_t CountFaults(FaultKind kind) const;

  // One line per model event and per fault record, interleaved in record
  // order.  Two runs are byte-identical replays iff their Flatten()s match.
  std::string Flatten() const;

 private:
  std::vector<TraceEntry> entries_;
  std::vector<FaultRecord> faults_;
};

}  // namespace hpl::sim

#endif  // HPL_SIM_TRACE_H_
