// Trace: the record of a simulation run, convertible to the paper's formal
// model (a validated core::Computation).
#ifndef HPL_SIM_TRACE_H_
#define HPL_SIM_TRACE_H_

#include <cstddef>
#include <vector>

#include "core/computation.h"
#include "sim/message.h"

namespace hpl::sim {

struct TraceEntry {
  hpl::Event event;
  std::int64_t time = 0;
  MessageClass klass = MessageClass::kUnderlying;
};

class Trace {
 public:
  void Record(hpl::Event event, std::int64_t time, MessageClass klass);

  const std::vector<TraceEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }

  // The run as a system computation (throws if the trace violates the
  // model, which would indicate a simulator bug).
  hpl::Computation ToComputation() const;

  // The prefix of the computation consisting of the first n events.
  hpl::Computation ToComputationPrefix(std::size_t n) const;

  // Event counts by class/kind.
  std::size_t CountSends(MessageClass klass) const;
  std::size_t CountReceives(MessageClass klass) const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace hpl::sim

#endif  // HPL_SIM_TRACE_H_
