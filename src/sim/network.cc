#include "sim/network.h"

#include <algorithm>

#include "core/types.h"

namespace hpl::sim {

Time Network::DeliveryTime(Time now, hpl::ProcessId from, hpl::ProcessId to,
                           MessageClass klass) {
  if (from < 0 || from >= hpl::kMaxProcesses || to < 0 ||
      to >= hpl::kMaxProcesses)
    throw hpl::ModelError("Network::DeliveryTime: bad endpoint");
  Time delay = options_.delay_base;
  if (klass == MessageClass::kUnderlying)
    delay += options_.underlying_extra_delay;
  if (options_.delay_jitter > 0)
    delay += static_cast<Time>(
        rng_.Below(static_cast<std::uint64_t>(options_.delay_jitter) + 1));
  Time at = now + std::max<Time>(delay, 1);
  if (options_.fifo) at = std::max(at, last_delivery_[from][to] + 1);
  last_delivery_[from][to] = at;
  return at;
}

}  // namespace hpl::sim
