#include "sim/network.h"

#include <algorithm>

#include "core/types.h"

namespace hpl::sim {

namespace {

bool CutSeparates(const PartitionWindow& window, Time now, hpl::ProcessId from,
                  hpl::ProcessId to) {
  if (now < window.begin || now >= window.end) return false;
  return window.side.Contains(from) != window.side.Contains(to);
}

}  // namespace

Time& Network::LastDelivery(hpl::ProcessId from, hpl::ProcessId to) {
  const int need = std::max(from, to) + 1;
  if (need > dim_) {
    std::vector<Time> grown(static_cast<std::size_t>(need) * need, 0);
    for (int f = 0; f < dim_; ++f)
      for (int t = 0; t < dim_; ++t)
        grown[static_cast<std::size_t>(f) * need + t] =
            last_delivery_[static_cast<std::size_t>(f) * dim_ + t];
    last_delivery_ = std::move(grown);
    dim_ = need;
  }
  return last_delivery_[static_cast<std::size_t>(from) * dim_ + to];
}

Time Network::DrawDelay(MessageClass klass) {
  Time delay = options_.delay_base;
  if (klass == MessageClass::kUnderlying)
    delay += options_.underlying_extra_delay;
  if (options_.delay_jitter > 0)
    delay += static_cast<Time>(
        rng_.Below(static_cast<std::uint64_t>(options_.delay_jitter) + 1));
  return std::max<Time>(delay, 1);
}

Routing Network::Route(Time now, hpl::ProcessId from, hpl::ProcessId to,
                       MessageClass klass) {
  if (from < 0 || from >= hpl::kMaxProcesses || to < 0 ||
      to >= hpl::kMaxProcesses)
    throw hpl::ModelError("Network::Route: bad endpoint");

  Routing routing;
  // 1. Partition: a pure function of the send time, so it consumes no
  //    randomness and cannot shift the draw stream between replays.
  for (const PartitionWindow& window : options_.partitions) {
    if (CutSeparates(window, now, from, to)) {
      routing.dropped = true;
      routing.reason = DropReason::kPartition;
      return routing;
    }
  }
  // 2. Jitter draw, 3. loss draw — in that fixed order.
  const Time delay = DrawDelay(klass);
  if (options_.drop_probability > 0.0 &&
      rng_.Chance(options_.drop_probability)) {
    routing.dropped = true;
    routing.reason = DropReason::kLoss;
    return routing;  // the channel clock is NOT advanced for drops
  }
  routing.at = now + delay;
  if (options_.fifo) {
    Time& last = LastDelivery(from, to);
    routing.at = std::max(routing.at, last + 1);
    last = routing.at;
  }
  // 4. Duplication draw (+ the copy's own jitter draw).
  if (options_.duplicate_probability > 0.0 &&
      rng_.Chance(options_.duplicate_probability)) {
    routing.duplicated = true;
    routing.duplicate_at = now + DrawDelay(klass);
    if (options_.fifo) {
      Time& last = LastDelivery(from, to);
      routing.duplicate_at = std::max(routing.duplicate_at, last + 1);
      last = routing.duplicate_at;
    }
  }
  return routing;
}

Time Network::DeliveryTime(Time now, hpl::ProcessId from, hpl::ProcessId to,
                           MessageClass klass) {
  if (from < 0 || from >= hpl::kMaxProcesses || to < 0 ||
      to >= hpl::kMaxProcesses)
    throw hpl::ModelError("Network::DeliveryTime: bad endpoint");
  Time at = now + DrawDelay(klass);
  if (options_.fifo) {
    Time& last = LastDelivery(from, to);
    at = std::max(at, last + 1);
    last = at;
  }
  return at;
}

}  // namespace hpl::sim
