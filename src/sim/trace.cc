#include "sim/trace.h"

#include <sstream>

namespace hpl::sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropLoss:
      return "drop-loss";
    case FaultKind::kDropPartition:
      return "drop-partition";
    case FaultKind::kDropCrashed:
      return "drop-crashed";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
  }
  return "?";
}

void Trace::Record(hpl::Event event, std::int64_t time, MessageClass klass) {
  entries_.push_back(TraceEntry{std::move(event), time, klass});
}

void Trace::RecordFault(FaultKind kind, std::int64_t time,
                        hpl::ProcessId process, hpl::MessageId message,
                        hpl::ProcessId from) {
  FaultRecord record;
  record.kind = kind;
  record.time = time;
  record.process = process;
  record.message = message;
  record.from = from;
  record.entry_index = entries_.size();
  faults_.push_back(record);
}

hpl::Computation Trace::ToComputation() const {
  std::vector<hpl::Event> events;
  events.reserve(entries_.size());
  for (const TraceEntry& entry : entries_) events.push_back(entry.event);
  return hpl::Computation(std::move(events));  // validates
}

hpl::Computation Trace::ToComputationPrefix(std::size_t n) const {
  if (n > entries_.size())
    throw hpl::ModelError("Trace::ToComputationPrefix: n exceeds trace");
  std::vector<hpl::Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) events.push_back(entries_[i].event);
  return hpl::Computation(std::move(events));
}

std::size_t Trace::CountSends(MessageClass klass) const {
  std::size_t n = 0;
  for (const TraceEntry& entry : entries_)
    if (entry.event.IsSend() && entry.klass == klass) ++n;
  return n;
}

std::size_t Trace::CountReceives(MessageClass klass) const {
  std::size_t n = 0;
  for (const TraceEntry& entry : entries_)
    if (entry.event.IsReceive() && entry.klass == klass) ++n;
  return n;
}

std::size_t Trace::CountFaults(FaultKind kind) const {
  std::size_t n = 0;
  for (const FaultRecord& record : faults_)
    if (record.kind == kind) ++n;
  return n;
}

std::string Trace::Flatten() const {
  std::ostringstream out;
  std::size_t next_fault = 0;
  for (std::size_t i = 0; i <= entries_.size(); ++i) {
    while (next_fault < faults_.size() &&
           faults_[next_fault].entry_index == i) {
      const FaultRecord& f = faults_[next_fault++];
      out << "! " << FaultKindName(f.kind) << " t=" << f.time
          << " p=" << f.process;
      if (f.message != hpl::kNoMessage)
        out << " m=" << f.message << " from=" << f.from;
      out << '\n';
    }
    if (i < entries_.size()) {
      const TraceEntry& entry = entries_[i];
      out << entry.time << ' ' << entry.event.ToString()
          << (entry.klass == MessageClass::kOverhead ? " [oh]" : "") << '\n';
    }
  }
  return out.str();
}

}  // namespace hpl::sim
