#include "sim/trace.h"

namespace hpl::sim {

void Trace::Record(hpl::Event event, std::int64_t time, MessageClass klass) {
  entries_.push_back(TraceEntry{std::move(event), time, klass});
}

hpl::Computation Trace::ToComputation() const {
  std::vector<hpl::Event> events;
  events.reserve(entries_.size());
  for (const TraceEntry& entry : entries_) events.push_back(entry.event);
  return hpl::Computation(std::move(events));  // validates
}

hpl::Computation Trace::ToComputationPrefix(std::size_t n) const {
  if (n > entries_.size())
    throw hpl::ModelError("Trace::ToComputationPrefix: n exceeds trace");
  std::vector<hpl::Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) events.push_back(entries_[i].event);
  return hpl::Computation(std::move(events));
}

std::size_t Trace::CountSends(MessageClass klass) const {
  std::size_t n = 0;
  for (const TraceEntry& entry : entries_)
    if (entry.event.IsSend() && entry.klass == klass) ++n;
  return n;
}

std::size_t Trace::CountReceives(MessageClass klass) const {
  std::size_t n = 0;
  for (const TraceEntry& entry : entries_)
    if (entry.event.IsReceive() && entry.klass == klass) ++n;
  return n;
}

}  // namespace hpl::sim
