// Actor: the behaviour of one simulated process.
//
// Actors react to four stimuli — start of the run, message delivery, timer
// expiry, and recovery from a scheduled crash — and act through the
// Context: sending messages, arming timers, recording internal events, and
// crashing.  A crashed actor receives nothing and sends nothing while down,
// matching the paper's §5 failure model ("the process does not send
// messages after its failure"); timers armed before the crash never fire,
// even if the process later recovers.
#ifndef HPL_SIM_ACTOR_H_
#define HPL_SIM_ACTOR_H_

#include <cstdint>
#include <string>

#include "sim/message.h"
#include "sim/network.h"

namespace hpl::sim {

using TimerId = std::int64_t;

class Context {
 public:
  virtual ~Context() = default;

  virtual Time Now() const = 0;
  virtual hpl::ProcessId Self() const = 0;
  virtual int NumProcesses() const = 0;

  // Sends a message; returns its id.  `type` is the protocol tag.
  virtual hpl::MessageId Send(hpl::ProcessId to, MessageClass klass,
                              std::string type, std::int64_t a = 0,
                              std::int64_t b = 0) = 0;

  // Arms a one-shot timer `delay` ticks from now; returns its id.
  virtual TimerId SetTimer(Time delay) = 0;

  // Records an internal event with the given label in the trace.
  virtual void Internal(std::string label) = 0;

  // Crashes this process: records an internal "crash" event; all queued and
  // future deliveries/timers for it are dropped.
  virtual void Crash() = 0;

  // Stops the whole simulation (e.g. a detector announcing its verdict).
  virtual void HaltSimulation(std::string reason) = 0;
};

class Actor {
 public:
  virtual ~Actor() = default;
  virtual void OnStart(Context& ctx) { (void)ctx; }
  virtual void OnMessage(Context& ctx, const Message& msg) = 0;
  virtual void OnTimer(Context& ctx, TimerId timer) {
    (void)ctx;
    (void)timer;
  }
  // Called when a scheduled recovery brings the process back.  `wiped` is
  // true when the fault event asked for amnesia recovery: the actor should
  // then reset its protocol state to its initial value before resuming
  // (local state lives in the actor, so the simulator delegates the wipe).
  // All pre-crash timers are already cancelled either way; re-arm here.
  virtual void OnRecover(Context& ctx, bool wiped) {
    (void)ctx;
    (void)wiped;
  }
};

}  // namespace hpl::sim

#endif  // HPL_SIM_ACTOR_H_
