// Messages exchanged by simulated actors.
//
// The experiment harnesses need to separate "underlying" computation
// messages from detection-algorithm "overhead" messages (paper Section 5's
// lower bound counts exactly this split), so every message carries a class
// tag in addition to its protocol type and payload.
#ifndef HPL_SIM_MESSAGE_H_
#define HPL_SIM_MESSAGE_H_

#include <cstdint>
#include <string>

#include "core/types.h"

namespace hpl::sim {

enum class MessageClass : std::uint8_t {
  kUnderlying,  // application/basic computation traffic
  kOverhead,    // control traffic added by a detection algorithm
};

struct Message {
  hpl::MessageId id = hpl::kNoMessage;
  hpl::ProcessId from = hpl::kNoProcess;
  hpl::ProcessId to = hpl::kNoProcess;
  MessageClass klass = MessageClass::kUnderlying;
  // Protocol-defined type tag ("work", "ack", "token", "heartbeat", ...).
  std::string type;
  // Small integer payload; protocols needing more encode it themselves.
  std::int64_t a = 0;
  std::int64_t b = 0;

  std::string Label() const {
    return type + (klass == MessageClass::kOverhead ? "!" : "");
  }
};

}  // namespace hpl::sim

#endif  // HPL_SIM_MESSAGE_H_
