// Discrete-event simulator for asynchronous message-passing systems.
//
// Executes a set of Actors over a Network, recording the run as a trace of
// send / receive / internal events that converts (see trace.h) into a
// validated core::Computation — the bridge between "running a protocol"
// and the paper's formal model.
//
// Determinism: the event queue breaks time ties by sequence number, and all
// randomness flows from the constructor seed, so identical inputs replay
// identical traces — including every drop, duplication, crash, and
// recovery, which land in the trace's fault ledger.
//
// Faults: SimulatorOptions::faults schedules crash and recover events per
// process.  While crashed, a process receives nothing (arriving messages
// are recorded as kDropCrashed) and sends nothing; its pending timers are
// cancelled permanently via a per-process crash epoch, so a timer armed
// before a crash never fires after recovery.  Recovery re-runs nothing by
// itself: the actor's OnRecover callback decides whether state survives
// (wiped=false) or is reset (wiped=true).
#ifndef HPL_SIM_SIMULATOR_H_
#define HPL_SIM_SIMULATOR_H_

#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "sim/actor.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace hpl::sim {

// A scheduled crash or recovery.  Crashing an already-crashed process (or
// recovering a live one) is a no-op, so overlapping schedules are safe.
struct FaultEvent {
  hpl::ProcessId process = hpl::kNoProcess;
  Time at = 0;
  bool recover = false;  // false: crash at `at`; true: recover at `at`
  bool wipe = false;     // recover only: ask the actor to reset its state
};

struct SimulatorOptions {
  NetworkOptions network;
  std::uint64_t seed = 1;
  // Stop after this many delivered stimuli (safety valve against runaway
  // protocols); the run is marked incomplete if hit.
  std::size_t max_steps = 1'000'000;
  // Scheduled crashes/recoveries, applied in (at, schedule order).  At
  // equal times a fault fires before message deliveries scheduled later.
  std::vector<FaultEvent> faults;
};

struct RunStats {
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  std::size_t underlying_sent = 0;
  std::size_t overhead_sent = 0;
  std::size_t internal_events = 0;
  // Fault accounting (mirrors the trace's fault ledger).
  std::size_t drops_loss = 0;
  std::size_t drops_partition = 0;
  std::size_t drops_crashed = 0;
  std::size_t duplicates = 0;
  std::size_t crashes = 0;
  std::size_t recoveries = 0;
  Time end_time = 0;
  bool completed = false;  // queue drained (or halted) before max_steps
  std::string halt_reason;
};

class Simulator : public Context {
 public:
  Simulator(std::vector<std::unique_ptr<Actor>> actors,
            const SimulatorOptions& options);

  // Runs to completion (drained queue, halt, or step cap) and returns stats.
  RunStats Run();

  const Trace& trace() const noexcept { return trace_; }
  const RunStats& stats() const noexcept { return stats_; }
  bool Crashed(hpl::ProcessId p) const { return crashed_.at(p); }

  // --- Context interface (valid only inside actor callbacks) -------------
  Time Now() const override { return now_; }
  hpl::ProcessId Self() const override { return current_; }
  int NumProcesses() const override {
    return static_cast<int>(actors_.size());
  }
  hpl::MessageId Send(hpl::ProcessId to, MessageClass klass, std::string type,
                      std::int64_t a, std::int64_t b) override;
  TimerId SetTimer(Time delay) override;
  void Internal(std::string label) override;
  void Crash() override;
  void HaltSimulation(std::string reason) override;

 private:
  struct Pending {
    Time at = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO among same-time entries
    bool is_timer = false;
    bool is_fault = false;      // crash/recover event
    bool fault_recover = false;
    bool fault_wipe = false;
    bool is_duplicate = false;  // second delivery of a duplicated message
    TimerId timer = 0;
    std::uint64_t timer_epoch = 0;  // crash epoch at arming time
    Message message;
    hpl::ProcessId target = hpl::kNoProcess;
    bool operator>(const Pending& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  void ApplyCrash(hpl::ProcessId p);
  void ApplyRecover(hpl::ProcessId p, bool wipe);
  void RequireInCallback() const;

  std::vector<std::unique_ptr<Actor>> actors_;
  Network network_;
  Trace trace_;
  RunStats stats_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::vector<bool> crashed_;
  // Bumped on every crash of p; timers carry the epoch they were armed in
  // and are discarded on mismatch, so recovery cannot resurrect them.
  std::vector<std::uint64_t> epoch_;
  Time now_ = 0;
  hpl::ProcessId current_ = hpl::kNoProcess;
  bool in_callback_ = false;
  bool halted_ = false;
  std::size_t max_steps_ = 1'000'000;
  std::uint64_t next_seq_ = 0;
  hpl::MessageId next_message_ = 0;
  TimerId next_timer_ = 0;
};

}  // namespace hpl::sim

#endif  // HPL_SIM_SIMULATOR_H_
