// Discrete-event simulator for asynchronous message-passing systems.
//
// Executes a set of Actors over a Network, recording the run as a trace of
// send / receive / internal events that converts (see trace.h) into a
// validated core::Computation — the bridge between "running a protocol"
// and the paper's formal model.
//
// Determinism: the event queue breaks time ties by sequence number, and all
// randomness flows from the constructor seed, so identical inputs replay
// identical traces.
#ifndef HPL_SIM_SIMULATOR_H_
#define HPL_SIM_SIMULATOR_H_

#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "sim/actor.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace hpl::sim {

struct SimulatorOptions {
  NetworkOptions network;
  std::uint64_t seed = 1;
  // Stop after this many delivered stimuli (safety valve against runaway
  // protocols); the run is marked incomplete if hit.
  std::size_t max_steps = 1'000'000;
};

struct RunStats {
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  std::size_t underlying_sent = 0;
  std::size_t overhead_sent = 0;
  std::size_t internal_events = 0;
  Time end_time = 0;
  bool completed = false;  // queue drained (or halted) before max_steps
  std::string halt_reason;
};

class Simulator : public Context {
 public:
  Simulator(std::vector<std::unique_ptr<Actor>> actors,
            const SimulatorOptions& options);

  // Runs to completion (drained queue, halt, or step cap) and returns stats.
  RunStats Run();

  const Trace& trace() const noexcept { return trace_; }
  const RunStats& stats() const noexcept { return stats_; }
  bool Crashed(hpl::ProcessId p) const { return crashed_.at(p); }

  // --- Context interface (valid only inside actor callbacks) -------------
  Time Now() const override { return now_; }
  hpl::ProcessId Self() const override { return current_; }
  int NumProcesses() const override {
    return static_cast<int>(actors_.size());
  }
  hpl::MessageId Send(hpl::ProcessId to, MessageClass klass, std::string type,
                      std::int64_t a, std::int64_t b) override;
  TimerId SetTimer(Time delay) override;
  void Internal(std::string label) override;
  void Crash() override;
  void HaltSimulation(std::string reason) override;

 private:
  struct Pending {
    Time at = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO among same-time entries
    bool is_timer = false;
    TimerId timer = 0;
    Message message;
    hpl::ProcessId target = hpl::kNoProcess;
    bool operator>(const Pending& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  void RequireInCallback() const;

  std::vector<std::unique_ptr<Actor>> actors_;
  Network network_;
  Trace trace_;
  RunStats stats_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::vector<bool> crashed_;
  Time now_ = 0;
  hpl::ProcessId current_ = hpl::kNoProcess;
  bool in_callback_ = false;
  bool halted_ = false;
  std::size_t max_steps_ = 1'000'000;
  std::uint64_t next_seq_ = 0;
  hpl::MessageId next_message_ = 0;
  TimerId next_timer_ = 0;
};

}  // namespace hpl::sim

#endif  // HPL_SIM_SIMULATOR_H_
