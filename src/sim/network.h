// The simulated network: point-to-point channels with configurable delay,
// ordering semantics, and fault injection.
//
// The paper's model is fully asynchronous — messages take arbitrary finite
// time and nothing synchronizes processes except messages.  The network
// model reproduces that: delays are drawn per message from a seeded
// distribution, and FIFO ordering is optional (the paper does not assume
// it; some protocols, like Safra's ring token, do not need it either).
//
// Faults extend the model with the classic lossy-channel adversary: each
// message may be dropped with a fixed probability, dropped because a
// partition window separates its endpoints, or duplicated.  Loss never
// forges or corrupts messages, so the fair-lossy assumptions behind
// Chandra-Toueg style algorithms (protocols/consensus.h) hold: a message
// retransmitted forever is eventually delivered with probability 1.
#ifndef HPL_SIM_NETWORK_H_
#define HPL_SIM_NETWORK_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "sim/message.h"
#include "sim/rng.h"

namespace hpl::sim {

using Time = std::int64_t;

// A half-open time window [begin, end) during which messages crossing the
// cut between `side` and its complement are dropped.  Messages with both
// endpoints on the same side are unaffected.
struct PartitionWindow {
  Time begin = 0;
  Time end = 0;
  hpl::ProcessSet side;
};

struct NetworkOptions {
  // Delay = base + uniform[0, jitter].
  Time delay_base = 1;
  Time delay_jitter = 9;
  // Extra delay applied to kUnderlying messages only.  Lets experiments
  // model a slow, sparse underlying computation against fast control
  // traffic (the adversarial family behind the Section-5 lower bound).
  Time underlying_extra_delay = 0;
  // When true, deliveries on each (from, to) channel preserve send order.
  bool fifo = false;
  // Per-message loss probability in [0, 1].  Drawn independently per send.
  double drop_probability = 0.0;
  // Per-message duplication probability in [0, 1].  A duplicated message is
  // delivered twice, the copy with an independently drawn delay.
  double duplicate_probability = 0.0;
  // Partition windows; a message is dropped if its send time falls inside a
  // window whose cut separates sender from receiver.
  std::vector<PartitionWindow> partitions;
};

// Why a message never arrived (or arrived twice).
enum class DropReason : std::uint8_t { kNone, kLoss, kPartition };

// The routing decision for one send.  Deterministic per (seed, send
// sequence): see Route() for the fixed draw order.
struct Routing {
  bool dropped = false;
  DropReason reason = DropReason::kNone;
  Time at = 0;  // delivery time of the primary copy (valid iff !dropped)
  bool duplicated = false;
  Time duplicate_at = 0;  // delivery time of the copy (valid iff duplicated)
};

class Network {
 public:
  Network(NetworkOptions options, std::uint64_t seed)
      : options_(std::move(options)), rng_(seed) {}

  // Routes a message sent at `now` from->to.  The rng draw order is fixed
  // so that replay with the same seed is byte-identical:
  //   1. partition check (no draw — purely a function of `now`),
  //   2. delay jitter draw (iff delay_jitter > 0),
  //   3. loss draw (iff drop_probability > 0),
  //   4. duplication draw (iff duplicate_probability > 0 and not dropped),
  //      followed by the copy's jitter draw (iff delay_jitter > 0).
  // The FIFO clamp is updated only by copies that are actually delivered;
  // dropped messages leave the channel clock untouched, so a later message
  // may legitimately arrive earlier than the dropped one would have.
  Routing Route(Time now, hpl::ProcessId from, hpl::ProcessId to,
                MessageClass klass = MessageClass::kUnderlying);

  // Delivery time for a message sent at `now` from->to, ignoring loss and
  // duplication (legacy fault-free view; equivalent to Route().at with the
  // fault knobs at their defaults).  Enforces FIFO by clamping to the last
  // scheduled delivery on the channel when requested.
  Time DeliveryTime(Time now, hpl::ProcessId from, hpl::ProcessId to,
                    MessageClass klass = MessageClass::kUnderlying);

  const NetworkOptions& options() const noexcept { return options_; }

 private:
  // Raw delay draw (base + class extra + jitter), before FIFO clamping.
  Time DrawDelay(MessageClass klass);
  // FIFO channel clock for (from, to); lazily sized (see LastDelivery).
  Time& LastDelivery(hpl::ProcessId from, hpl::ProcessId to);

  NetworkOptions options_;
  Rng rng_;
  // last_delivery_ is a flat [dim_ x dim_] matrix grown on first use of an
  // endpoint, so small simulations never allocate kMaxProcesses^2 entries.
  std::vector<Time> last_delivery_;
  int dim_ = 0;
};

}  // namespace hpl::sim

#endif  // HPL_SIM_NETWORK_H_
