// The simulated network: point-to-point channels with configurable delay
// and ordering semantics.
//
// The paper's model is fully asynchronous — messages take arbitrary finite
// time and nothing synchronizes processes except messages.  The network
// model reproduces that: delays are drawn per message from a seeded
// distribution, and FIFO ordering is optional (the paper does not assume
// it; some protocols, like Safra's ring token, do not need it either).
#ifndef HPL_SIM_NETWORK_H_
#define HPL_SIM_NETWORK_H_

#include <cstdint>

#include "sim/message.h"
#include "sim/rng.h"

namespace hpl::sim {

using Time = std::int64_t;

struct NetworkOptions {
  // Delay = base + uniform[0, jitter].
  Time delay_base = 1;
  Time delay_jitter = 9;
  // Extra delay applied to kUnderlying messages only.  Lets experiments
  // model a slow, sparse underlying computation against fast control
  // traffic (the adversarial family behind the Section-5 lower bound).
  Time underlying_extra_delay = 0;
  // When true, deliveries on each (from, to) channel preserve send order.
  bool fifo = false;
};

class Network {
 public:
  Network(NetworkOptions options, std::uint64_t seed)
      : options_(options), rng_(seed) {}

  // Delivery time for a message sent at `now` from->to.  Enforces FIFO by
  // clamping to the last scheduled delivery on the channel when requested.
  Time DeliveryTime(Time now, hpl::ProcessId from, hpl::ProcessId to,
                    MessageClass klass = MessageClass::kUnderlying);

  const NetworkOptions& options() const noexcept { return options_; }

 private:
  NetworkOptions options_;
  Rng rng_;
  // last_delivery_[from][to]; lazily sized.
  Time last_delivery_[hpl::kMaxProcesses][hpl::kMaxProcesses] = {};
};

}  // namespace hpl::sim

#endif  // HPL_SIM_NETWORK_H_
