// Deterministic pseudo-random number generation for simulations.
//
// All stochastic choices in the simulator draw from this generator so a
// (seed, topology, protocol) triple fully determines the run — a property
// the tests assert and the experiment harnesses rely on.
#ifndef HPL_SIM_RNG_H_
#define HPL_SIM_RNG_H_

#include <cstdint>

namespace hpl::sim {

// xoshiro256** — fast, high-quality, and trivially seedable via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) {
      sm += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = sm;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n); n == 0 returns 0.
  std::uint64_t Below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : Next() % n;
  }

  // Uniform in [lo, hi] (inclusive).
  std::int64_t Between(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double Uniform01() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Chance(double p) noexcept { return Uniform01() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace hpl::sim

#endif  // HPL_SIM_RNG_H_
